"""Command-line interface: regenerate any table or figure of the paper,
or any parameterized variant of one.

Usage::

    repro-signaling list
    repro-signaling run fig4 [--fidelity {full,fast,smoke}] [--jobs N]
                             [--set key=value ...] [--protocols ss,hs]
                             [--format {text,csv,json}]
                             [--output fig4.txt] [--csv-dir results/]
    repro-signaling all [--fidelity fast] [--format json] [--jobs N]
                        [--output-dir results/] [--csv-dir results/]
    repro-signaling validate [fig11|all] [--fidelity smoke] [--jobs N]
                             [--format {text,json}] [--seed S]
                             [--output report.json] [--output-dir reports/]
    repro-signaling claims [--jobs N]
    repro-signaling report [--full]
    repro-signaling diagram ss [--multihop]
    repro-signaling --generate-docs [docs/cli.md]

(or ``python -m repro.cli ...``).  ``--generate-docs`` renders the
markdown CLI reference from the argparse tree (stdout, or the given
path) — the committed ``docs/cli.md`` is kept in sync by CI.

``--fidelity`` picks a named resolution profile (``full`` reproduces
the paper's axes, ``fast`` thins sweeps, ``smoke`` is a seconds-scale
sanity pass); the old ``--fast`` boolean remains as a deprecated alias
for ``--fidelity fast``.  ``--set key=value`` overrides any field of
the scenario's base parameter preset and ``--protocols`` narrows the
protocol set, so arbitrary scenario variants run with no new code.
``--format`` renders text tables (default), per-panel CSV, or a
versioned JSON artifact with a provenance block.  ``--jobs N`` fans
sweep points (for ``run``/``claims``) or whole experiments (for
``all``) across N worker processes; results are identical to the
serial run, just faster.  ``--task-timeout`` and ``--max-retries``
(or ``$REPRO_TASK_TIMEOUT`` / ``$REPRO_MAX_RETRIES``) tune the worker
pools' fault tolerance — see :mod:`repro.runtime.executor`; the
counters of what tolerance actually absorbed print with ``--verbose``.

``validate`` turns every scenario spec into an executable validation
plan (see :mod:`repro.validation`): artifact round-trips, base-point
invariants, the dense/template/batched/sparse backend parity matrix,
and — for the simulation scenarios — Student-t equivalence between the
replicated simulations and the analytic curves.  It exits 1 when any
check fails, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from collections.abc import Sequence

from repro.analysis.sensitivity import robustness_report
from repro.core.protocols import Protocol
from repro.experiments import experiment_ids, run_scenario, scenario
from repro.experiments.claims import render_report
from repro.experiments.diagrams import render_multihop_chain, render_singlehop_chain
from repro.experiments.runner import ExperimentResult
from repro.experiments.spec import (
    FAST,
    FIDELITIES,
    FULL,
    SMOKE,
    ScenarioError,
    parse_overrides,
)
from repro.runtime import (
    effective_jobs,
    failure_report,
    global_cache,
    run_experiments,
    using_jobs,
    using_tolerance,
)

__all__ = ["build_parser", "generate_cli_markdown", "main"]

_FORMATS = ("text", "csv", "json")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _non_negative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text!r}")
    return value


def _non_negative_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {text!r}")
    return value


def _add_jobs_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="solve across N worker processes (default: serial, or $REPRO_JOBS)",
    )
    command.add_argument(
        "--task-timeout",
        type=_non_negative_float,
        default=None,
        metavar="SECONDS",
        help="per-task stall timeout for worker pools; 0 disables "
        "(default: $REPRO_TASK_TIMEOUT, or no timeout)",
    )
    command.add_argument(
        "--max-retries",
        type=_non_negative_int,
        default=None,
        metavar="N",
        help="re-run a failing task up to N times with exponential backoff "
        "(default: $REPRO_MAX_RETRIES, or 2)",
    )


def _add_verbose_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--verbose",
        action="store_true",
        help="report solve-cache and fault-tolerance counters on stderr "
        "when done",
    )


def _add_fidelity_flags(command: argparse.ArgumentParser, default: str = FULL) -> None:
    command.add_argument(
        "--fidelity",
        choices=FIDELITIES,
        default=None,
        help=f"resolution profile (default: {default})",
    )
    command.add_argument(
        "--fast",
        action="store_true",
        help="(deprecated) alias for --fidelity fast",
    )


def _add_format_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--format",
        choices=_FORMATS,
        default="text",
        help="output rendering: aligned text tables, per-panel CSV, "
        "or a versioned JSON artifact with provenance",
    )


def _resolve_fidelity(args: argparse.Namespace) -> str:
    if args.fast:
        print(
            "warning: --fast is deprecated; use --fidelity fast",
            file=sys.stderr,
        )
        if args.fidelity is None:
            return FAST
    return args.fidelity or FULL


def _print_cache_stats() -> None:
    """Solve-cache counters, so sweep dedup wins are observable.

    The counters cover this (parent) process.  For ``run``/``claims``
    the parent dedupes every sweep point, so with ``--jobs N`` the
    misses are exactly the work fanned to the workers and the hits are
    the solves the memo cache saved.  ``all --jobs N`` fans *whole
    experiments* into workers (each with its own per-process cache), so
    the parent counters only reflect parent-side solves — near zero
    there by design.
    """
    stats = global_cache().stats()
    lookups = stats["hits"] + stats["misses"]
    rate = (100.0 * stats["hits"] / lookups) if lookups else 0.0
    print(
        f"solve cache: {stats['hits']} hits, {stats['misses']} misses "
        f"({rate:.1f}% hit rate), {stats['size']} entries",
        file=sys.stderr,
    )
    print(f"failure report: {failure_report().summary()}", file=sys.stderr)


def _tolerance_kwargs(args: argparse.Namespace) -> dict:
    """Only the tolerance knobs the user actually set.

    Flags left at their ``None`` default are omitted entirely so
    :func:`repro.runtime.using_tolerance` keeps the environment-derived
    defaults (passing ``None`` through would *reset* them instead).
    """
    kwargs = {}
    if getattr(args, "task_timeout", None) is not None:
        kwargs["task_timeout"] = args.task_timeout
    if getattr(args, "max_retries", None) is not None:
        kwargs["max_retries"] = args.max_retries
    return kwargs


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-signaling",
        description=(
            "Reproduce tables/figures of 'A Comparison of Hard-state and "
            "Soft-state Signaling Protocols' (Ji et al., SIGCOMM 2003)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the available scenarios")

    run_cmd = commands.add_parser("run", help="run one scenario (or a variant of it)")
    run_cmd.add_argument(
        "experiment",
        choices=sorted(experiment_ids()),
        help="scenario id (see `list`)",
    )
    _add_fidelity_flags(run_cmd)
    run_cmd.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a base-preset parameter (repeatable), "
        "e.g. --set loss_rate=0.05",
    )
    run_cmd.add_argument(
        "--protocols",
        default=None,
        metavar="P1,P2",
        help="narrow the protocol set, e.g. --protocols ss,hs",
    )
    _add_format_flag(run_cmd)
    run_cmd.add_argument("--output", type=pathlib.Path, help="write the rendering here")
    run_cmd.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        help="also write one CSV per panel into this directory",
    )
    _add_jobs_flag(run_cmd)
    _add_verbose_flag(run_cmd)

    all_cmd = commands.add_parser("all", help="run every scenario")
    _add_fidelity_flags(all_cmd)
    _add_format_flag(all_cmd)
    all_cmd.add_argument(
        "--output-dir",
        type=pathlib.Path,
        help="write one rendering per scenario into this directory",
    )
    all_cmd.add_argument(
        "--csv-dir",
        type=pathlib.Path,
        help="also write one CSV per panel per scenario into this directory",
    )
    _add_jobs_flag(all_cmd)
    _add_verbose_flag(all_cmd)

    validate_cmd = commands.add_parser(
        "validate",
        help="run the scenario validation plans (parity matrix, sim-vs-model "
        "equivalence, artifact and invariant checks)",
    )
    validate_cmd.add_argument(
        "target",
        nargs="?",
        default="all",
        choices=sorted(experiment_ids()) + ["all"],
        help="one scenario id, or 'all' (default) for every registered scenario",
    )
    _add_fidelity_flags(validate_cmd, default=SMOKE)
    validate_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="per-scenario text tables (default) or the versioned JSON "
        "validation artifact",
    )
    validate_cmd.add_argument(
        "--seed",
        type=_non_negative_int,
        default=None,
        metavar="S",
        help="override the simulation seed of validation scenarios",
    )
    validate_destination = validate_cmd.add_mutually_exclusive_group()
    validate_destination.add_argument(
        "--output", type=pathlib.Path, help="write the rendering here"
    )
    validate_destination.add_argument(
        "--output-dir",
        type=pathlib.Path,
        help="write one report per scenario into this directory",
    )
    _add_jobs_flag(validate_cmd)
    _add_verbose_flag(validate_cmd)

    claims_cmd = commands.add_parser(
        "claims", help="check the paper's qualitative claims across decodings"
    )
    _add_jobs_flag(claims_cmd)
    _add_verbose_flag(claims_cmd)

    report_cmd = commands.add_parser(
        "report", help="evaluate every per-figure claim against regenerated figures"
    )
    report_cmd.add_argument(
        "--full", action="store_true", help="use full-resolution sweeps (slower)"
    )

    lint_cmd = commands.add_parser(
        "lint",
        help="run the reprolint invariant checks (layer DAG, determinism, "
        "canonical order, parity registration, worker safety, silent "
        "failures); needs a source checkout",
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="human-readable findings (default) or the schema-versioned "
        "JSON report",
    )

    diagram_cmd = commands.add_parser(
        "diagram", help="render a model chain (paper Figs. 3, 15, 16) as text"
    )
    diagram_cmd.add_argument(
        "protocol", choices=[p.value for p in Protocol], help="protocol to render"
    )
    diagram_cmd.add_argument(
        "--multihop", action="store_true", help="render the multi-hop chain instead"
    )
    return parser


def _option_signature(action: argparse.Action) -> str:
    """``--flag METAVAR`` (or the positional's metavar) for one action."""
    if not action.option_strings:
        metavar = action.metavar or action.dest
        if isinstance(action.choices, (list, tuple)) and len(action.choices) <= 6:
            return "{" + ",".join(str(c) for c in action.choices) + "}"
        return str(metavar)
    flags = ", ".join(action.option_strings)
    if action.nargs == 0:
        return flags
    metavar = action.metavar
    if metavar is None and action.choices is not None:
        metavar = "{" + ",".join(str(c) for c in action.choices) + "}"
    if metavar is None:
        metavar = action.dest.upper()
    return f"{flags} {metavar}"


def generate_cli_markdown(parser: argparse.ArgumentParser | None = None) -> str:
    """Render the CLI reference (``docs/cli.md``) from the argparse tree.

    Deterministic, so the committed file can be diffed against a fresh
    rendering — the ``docs`` CI job fails when the two drift apart.
    Regenerate with ``python -m repro.cli --generate-docs docs/cli.md``
    or ``python tools/generate_cli_docs.py``.
    """
    parser = parser or build_parser()
    subparsers_action = next(
        action
        for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    help_by_command = {
        choice.dest: choice.help for choice in subparsers_action._choices_actions
    }
    lines = [
        "# CLI reference",
        "",
        "<!-- Generated by `python -m repro.cli --generate-docs docs/cli.md`;",
        "     do not edit by hand.  The `docs` CI job fails on drift. -->",
        "",
        f"`{parser.prog}` — {parser.description}",
        "",
        "Run as the installed `repro-signaling` console script or as",
        "`python -m repro.cli` from a checkout (`PYTHONPATH=src`).",
        "",
    ]
    for name, subparser in subparsers_action.choices.items():
        lines.append(f"## `{name}`")
        lines.append("")
        summary = subparser.description or help_by_command.get(name, "")
        if summary:
            lines.append(f"{summary.strip().rstrip('.')}.")
            lines.append("")
        usage = " ".join(subparser.format_usage().split())
        usage = usage.removeprefix("usage: ")
        lines.append(f"```\n{usage}\n```")
        lines.append("")
        rows = [
            action
            for action in subparser._actions
            if not isinstance(action, argparse._HelpAction)
        ]
        if rows:
            lines.append("| Argument | Description |")
            lines.append("| --- | --- |")
            for action in rows:
                help_text = (action.help or "").replace("|", "\\|")
                default = action.default
                # Skip only the "no meaningful default" sentinels; an
                # integer 0 default must not be conflated with False.
                suppressed = (
                    default is None
                    or default is False
                    or (isinstance(default, (tuple, list)) and not default)
                )
                if (
                    action.option_strings
                    and not suppressed
                    and "default" not in help_text
                ):
                    help_text = f"{help_text} (default: {default})"
                lines.append(f"| `{_option_signature(action)}` | {help_text} |")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _generate_docs(argv: list[str]) -> int:
    """Handle ``--generate-docs [PATH]``: print or write the reference."""
    rest = [arg for arg in argv if arg != "--generate-docs"]
    if len(rest) > 1 or any(arg.startswith("-") for arg in rest):
        # Option-like leftovers are mistakes (e.g. `--check` belongs to
        # tools/generate_cli_docs.py), not output paths to create.
        print("usage: repro-signaling --generate-docs [PATH]", file=sys.stderr)
        return 2
    text = generate_cli_markdown()
    if rest:
        path = pathlib.Path(rest[0])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path}")
    else:
        print(text, end="")
    return 0


def _render(result: ExperimentResult, fmt: str) -> str:
    if fmt == "json":
        return result.to_json()
    if fmt == "csv":
        blocks = []
        for panel_name, csv_text in result.to_csv().items():
            blocks.append(f"# panel: {panel_name}")
            blocks.append(csv_text.rstrip("\n"))
        return "\n".join(blocks)
    return result.to_text()


_EXTENSIONS = {"text": ".txt", "csv": ".csv", "json": ".json"}


def _emit(text: str, output: pathlib.Path | None) -> None:
    if output is None:
        print(text)
    else:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text + "\n")
        print(f"wrote {output}")


def _emit_panel_csvs(
    result: ExperimentResult, experiment_id: str, csv_dir: pathlib.Path
) -> None:
    csv_dir.mkdir(parents=True, exist_ok=True)
    for panel_name, csv_text in result.to_csv().items():
        slug = "".join(ch if ch.isalnum() else "_" for ch in panel_name).strip("_")
        path = csv_dir / f"{experiment_id}_{slug}.csv"
        path.write_text(csv_text)
        print(f"wrote {path}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if "--generate-docs" in arguments:
        return _generate_docs(arguments)
    try:
        return _dispatch(arguments)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch_validate(args: argparse.Namespace) -> int:
    """Run the ``validate`` verb; exit 1 when any check fails.

    Validation defaults to ``smoke`` fidelity (unlike ``run``/``all``,
    whose default is ``full``): the parity matrix and invariants are
    fidelity-thinned parameter grids, and full-fidelity simulation
    equivalence is a minutes-scale job best requested explicitly.
    """
    from repro.validation import validate_scenario

    if args.fast:
        print("warning: --fast is deprecated; use --fidelity fast", file=sys.stderr)
    fidelity = args.fidelity or (FAST if args.fast else SMOKE)
    ids = sorted(experiment_ids()) if args.target == "all" else [args.target]
    reports = []
    with using_jobs(args.jobs), using_tolerance(**_tolerance_kwargs(args)):
        for scenario_id in ids:
            reports.append(
                validate_scenario(scenario_id, fidelity, seed=args.seed)
            )
    failed = [report.scenario_id for report in reports if not report.passed]
    summary = (
        f"validated {len(reports)} scenario(s) at {fidelity} fidelity: "
        + ("all passed" if not failed else f"FAILED: {', '.join(failed)}")
    )
    if args.output_dir is not None:
        extension = ".json" if args.format == "json" else ".txt"
        for report in reports:
            path = args.output_dir / f"validate_{report.scenario_id}{extension}"
            _emit(
                report.to_json() if args.format == "json" else report.to_text(),
                path,
            )
        print(summary)
    elif args.format == "json":
        if len(reports) == 1:
            _emit(reports[0].to_json(), args.output)
        else:
            # One parseable document for the multi-scenario run.
            documents = [json.loads(report.to_json()) for report in reports]
            _emit(json.dumps(documents, indent=2), args.output)
    else:
        blocks = "\n\n".join(report.to_text() for report in reports)
        _emit(blocks + "\n\n" + summary, args.output)
    if args.verbose:
        _print_cache_stats()
    return 0 if all(report.passed for report in reports) else 1


def _find_reprolint_root() -> pathlib.Path | None:
    """Locate a repo checkout carrying ``tools/reprolint``.

    reprolint is repo tooling, not part of the installed package: it
    lints the source tree against ``tools/reprolint/layers.toml``.
    Try the checkout this module runs from (the ``PYTHONPATH=src``
    layout) first, then the working directory and its parents (the
    installed-console-script-from-a-checkout case).
    """
    candidates = [pathlib.Path(__file__).resolve().parents[2]]
    cwd = pathlib.Path.cwd().resolve()
    candidates.extend([cwd, *cwd.parents])
    for root in candidates:
        if (root / "tools" / "reprolint" / "layers.toml").is_file():
            return root
    return None


def _dispatch_lint(args: argparse.Namespace) -> int:
    """Run the ``lint`` verb by delegating to ``tools.reprolint``."""
    root = _find_reprolint_root()
    if root is None:
        print(
            "error: repro-signaling lint needs a source checkout "
            "(tools/reprolint/ was not found here or above the current "
            "directory); run it from the repo root, or use "
            "`python -m tools.reprolint` there",
            file=sys.stderr,
        )
        return 2
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.reprolint.cli import main as reprolint_main

    forwarded = list(args.paths) + ["--format", args.format, "--root", str(root)]
    return reprolint_main(forwarded)


def _dispatch(argv: Sequence[str] | None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in sorted(experiment_ids()):
            print(experiment_id)
        return 0
    if args.command == "run":
        fidelity = _resolve_fidelity(args)
        overrides = parse_overrides(args.overrides)
        with using_jobs(args.jobs), using_tolerance(**_tolerance_kwargs(args)):
            result = run_scenario(
                scenario(args.experiment),
                fidelity,
                overrides=overrides,
                protocols=args.protocols,
            )
        _emit(_render(result, args.format), args.output)
        if args.csv_dir is not None:
            _emit_panel_csvs(result, args.experiment, args.csv_dir)
        if args.verbose:
            _print_cache_stats()
        return 0
    if args.command == "all":
        fidelity = _resolve_fidelity(args)
        ids = sorted(experiment_ids())
        with using_tolerance(**_tolerance_kwargs(args)):
            if effective_jobs(args.jobs) <= 1:
                # Serial: stream each experiment's output as it
                # completes, so a long run shows progress and a late
                # crash cannot discard the artifacts already produced.
                results = (
                    run_experiments([experiment_id], fidelity=fidelity)[0]
                    for experiment_id in ids
                )
            else:
                results = run_experiments(ids, fidelity=fidelity, jobs=args.jobs)
            for experiment_id, result in zip(ids, results):
                output = (
                    args.output_dir / f"{experiment_id}{_EXTENSIONS[args.format]}"
                    if args.output_dir is not None
                    else None
                )
                _emit(_render(result, args.format), output)
                if args.csv_dir is not None:
                    _emit_panel_csvs(result, experiment_id, args.csv_dir)
                if output is None:
                    print()
        if args.verbose:
            _print_cache_stats()
        return 0
    if args.command == "validate":
        return _dispatch_validate(args)
    if args.command == "lint":
        return _dispatch_lint(args)
    if args.command == "claims":
        with using_tolerance(**_tolerance_kwargs(args)):
            print(robustness_report(jobs=args.jobs))
        if args.verbose:
            _print_cache_stats()
        return 0
    if args.command == "report":
        print(render_report(fast=not args.full))
        return 0
    if args.command == "diagram":
        protocol = Protocol(args.protocol)
        if args.multihop:
            if protocol not in Protocol.multihop_family():
                print(f"{protocol.value} is not part of the multi-hop analysis")
                return 1
            print(render_multihop_chain(protocol))
        else:
            print(render_singlehop_chain(protocol))
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
