"""repro — a reproduction of Ji, Ge, Kurose & Towsley (SIGCOMM 2003),
"A Comparison of Hard-state and Soft-state Signaling Protocols".

The library has four layers:

* :mod:`repro.core` — the paper's contribution: a unified CTMC model of
  five signaling protocols (SS, SS+ER, SS+RT, SS+RTR, HS) in single-
  and multi-hop settings, with the inconsistency-ratio, message-rate
  and integrated-cost metrics.
* :mod:`repro.sim` — a from-scratch discrete-event simulation kernel
  (generator-based processes, lossy channels, time-weighted monitors).
* :mod:`repro.protocols` and :mod:`repro.multihop` — executable
  implementations of the five protocols on that kernel, used to
  validate the model exactly as the paper does (Figs. 11-12).
* :mod:`repro.experiments` — one runnable experiment per table/figure
  of the paper's evaluation, plus :mod:`repro.analysis` extensions
  (timer optimization, sensitivity, a Raman-McCanne style NACK variant).

Quickstart::

    from repro import Protocol, SingleHopModel, kazaa_defaults

    solution = SingleHopModel(Protocol.SS_ER, kazaa_defaults()).solve()
    print(solution.inconsistency_ratio, solution.normalized_message_rate)
"""

from repro.core import (
    ContinuousTimeMarkovChain,
    MultiHopParameters,
    Protocol,
    SignalingParameters,
    SingleHopModel,
    SingleHopSolution,
    SingleHopState,
    kazaa_defaults,
    reservation_defaults,
    solve_all,
)
from repro.core.multihop import MultiHopModel, MultiHopSolution, solve_all_multihop

__version__ = "1.0.0"

__all__ = [
    "ContinuousTimeMarkovChain",
    "MultiHopModel",
    "MultiHopParameters",
    "MultiHopSolution",
    "Protocol",
    "SignalingParameters",
    "SingleHopModel",
    "SingleHopSolution",
    "SingleHopState",
    "__version__",
    "kazaa_defaults",
    "reservation_defaults",
    "solve_all",
    "solve_all_multihop",
]
