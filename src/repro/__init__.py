"""repro — a reproduction of Ji, Ge, Kurose & Towsley (SIGCOMM 2003),
"A Comparison of Hard-state and Soft-state Signaling Protocols".

The library has four layers:

* :mod:`repro.core` — the paper's contribution: a unified CTMC model of
  five signaling protocols (SS, SS+ER, SS+RT, SS+RTR, HS) in single-
  and multi-hop settings, with the inconsistency-ratio, message-rate
  and integrated-cost metrics.
* :mod:`repro.sim` — a from-scratch discrete-event simulation kernel
  (generator-based processes, lossy channels, time-weighted monitors).
* :mod:`repro.protocols` and :mod:`repro.multihop` — executable
  implementations of the five protocols on that kernel, used to
  validate the model exactly as the paper does (Figs. 11-12).
* :mod:`repro.experiments` — one declarative scenario spec per
  table/figure of the paper's evaluation, run by a generic executor,
  plus :mod:`repro.analysis` extensions (timer optimization,
  sensitivity, a Raman-McCanne style NACK variant).
* :mod:`repro.api` — the public facade: ``run_scenario``, ``sweep``,
  ``solve_singlehop``, ``solve_multihop``, ``list_scenarios``.

Quickstart::

    from repro import Protocol, SingleHopModel, kazaa_defaults

    solution = SingleHopModel(Protocol.SS_ER, kazaa_defaults()).solve()
    print(solution.inconsistency_ratio, solution.normalized_message_rate)

or, at the scenario level::

    import repro.api as api

    result = api.run_scenario("fig4", fidelity="fast",
                              overrides={"loss_rate": 0.05})
    print(result.to_text())
"""

from repro.core import (
    ContinuousTimeMarkovChain,
    MultiHopParameters,
    Protocol,
    SignalingParameters,
    SingleHopModel,
    SingleHopSolution,
    SingleHopState,
    kazaa_defaults,
    reservation_defaults,
    solve_all,
)
from repro.core.multihop import MultiHopModel, MultiHopSolution, solve_all_multihop

# The canonical value lives in repro._version (a bottom layer) so that
# provenance stamping in lower layers never imports this facade.
from repro._version import __version__  # noqa: E402


def __getattr__(name: str):
    # Lazy: `repro.api` pulls in the experiment registry, which the
    # core modelling layers above must stay importable without.
    if name == "api":
        import repro.api

        return repro.api
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ContinuousTimeMarkovChain",
    "MultiHopModel",
    "MultiHopParameters",
    "MultiHopSolution",
    "Protocol",
    "SignalingParameters",
    "SingleHopModel",
    "SingleHopSolution",
    "SingleHopState",
    "__version__",
    "api",
    "kazaa_defaults",
    "reservation_defaults",
    "solve_all",
    "solve_all_multihop",
]
