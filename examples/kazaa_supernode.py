#!/usr/bin/env python3
"""Kazaa supernode directory consistency under peer churn.

The paper motivates the single-hop model with a peer-to-peer file
sharing system: a peer registers its shared files with a supernode;
if the peer leaves without the supernode noticing, other peers are
directed to a dead endpoint (a *stale directory entry*).

This example sweeps peer session length (churn) and answers an
operator's questions:

* what fraction of the time is the directory entry wrong, per protocol?
* how many fruitless peer contacts does that cause (the
  application-specific cost, ``w`` contacts/second of staleness)?
* which protocol minimizes the total cost at each churn level?

Run: ``python examples/kazaa_supernode.py``
"""

from repro import Protocol, kazaa_defaults, solve_all

# Each second of stale state causes ~10 fruitless contact attempts
# (the paper's Fig. 7 weight).
FRUITLESS_CONTACT_WEIGHT = 10.0

SESSION_LENGTHS = (60.0, 300.0, 1800.0, 7200.0)  # 1 min .. 2 h


def main() -> None:
    base = kazaa_defaults()
    print("Kazaa peer/supernode signaling under churn")
    print(f"(cost weight: {FRUITLESS_CONTACT_WEIGHT:.0f} fruitless contacts per stale-second)")
    for session in SESSION_LENGTHS:
        params = base.replace(removal_rate=1.0 / session)
        solutions = solve_all(params)
        print(f"\nmean peer session = {session:.0f}s")
        print(
            f"  {'protocol':10s} {'stale frac':>11s} {'msgs/s':>9s} "
            f"{'total cost':>11s}"
        )
        best = min(
            Protocol, key=lambda p: solutions[p].integrated_cost(FRUITLESS_CONTACT_WEIGHT)
        )
        for protocol in Protocol:
            solution = solutions[protocol]
            marker = "  <- best" if protocol is best else ""
            print(
                f"  {protocol.value:10s} {solution.inconsistency_ratio:11.5f} "
                f"{solution.normalized_message_rate:9.4f} "
                f"{solution.integrated_cost(FRUITLESS_CONTACT_WEIGHT):11.4f}{marker}"
            )
    print(
        "\nObservation (paper Fig. 4): the shorter the sessions, the more the\n"
        "removal mechanism matters — SS+ER/SS+RTR/HS dominate under churn,\n"
        "while trigger reliability only differentiates long-lived sessions."
    )


if __name__ == "__main__":
    main()
