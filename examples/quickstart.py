#!/usr/bin/env python3
"""Quickstart: compare the five signaling protocols on one scenario.

Solves the paper's unified Markov model for every protocol at the
single-hop Kazaa defaults, cross-checks one protocol against the
discrete-event simulator, and prints the comparison the paper's
Section III-A.3 discusses.

Run: ``python examples/quickstart.py``
"""

from repro import Protocol, SingleHopModel, kazaa_defaults
from repro.protocols import SingleHopSimConfig, SingleHopSimulation


def main() -> None:
    params = kazaa_defaults()
    print("Scenario: Kazaa peer registering its shared files at a supernode")
    print(
        f"  loss={params.loss_rate:.0%}  delay={params.delay * 1000:.0f}ms  "
        f"session={params.mean_session_length:.0f}s  "
        f"update every {1 / params.update_rate:.0f}s  "
        f"R={params.refresh_interval:.0f}s T={params.timeout_interval:.0f}s"
    )
    print()
    print(f"{'protocol':10s} {'inconsistency':>14s} {'msg rate M':>12s} {'cost (w=10)':>12s}")
    for protocol in Protocol:
        solution = SingleHopModel(protocol, params).solve()
        print(
            f"{protocol.value:10s} {solution.inconsistency_ratio:14.5f} "
            f"{solution.normalized_message_rate:12.4f} "
            f"{solution.integrated_cost(10.0):12.4f}"
        )

    print()
    print("Cross-check: simulating SS+ER with deterministic timers ...")
    config = SingleHopSimConfig(
        protocol=Protocol.SS_ER, params=params, sessions=150, seed=7
    )
    result = SingleHopSimulation(config).run()
    model = SingleHopModel(Protocol.SS_ER, params).solve()
    print(
        f"  model I = {model.inconsistency_ratio:.5f}   "
        f"simulated I = {result.inconsistency_ratio:.5f}"
    )
    print(
        f"  model M = {model.normalized_message_rate:.4f}   "
        f"simulated M = {result.normalized_message_rate(params.removal_rate):.4f}"
    )
    print()
    print(
        "Takeaway (paper §V): explicit removal buys most of the consistency;\n"
        "adding reliable setup/update/removal (SS+RTR) matches hard state."
    )


if __name__ == "__main__":
    main()
