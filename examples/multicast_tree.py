#!/usr/bin/env python3
"""Multicast distribution trees: the tree-topology signaling models.

The paper's multi-hop analysis covers a linear relay chain; the tree
layer generalizes it to rooted distribution trees — the sender at the
root, receivers at the leaves, each edge an independent lossy hop.
This walkthrough builds topologies, solves one protocol per shape,
reads the per-leaf metrics, shows the chain reduction (a fan-out-1
tree is bit-identical to the chain model) and cross-checks one point
against the per-edge-channel discrete-event simulator.

Run: ``python examples/multicast_tree.py``
"""

import repro.api as api
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.multihop import MultiHopSimConfig, simulate_tree_replications


def main() -> None:
    print("Tree shapes (Topology constructors):")
    shapes = {
        "chain(3)": api.Topology.chain(3),
        "star(4)": api.Topology.star(4),
        "kary(2, 2)": api.Topology.kary(2, 2),
        "broom(2, 3)": api.Topology.broom(2, 3),
        "skewed(3)": api.Topology.skewed(3),
    }
    for name, topology in shapes.items():
        print(f"-- {name}: {topology.num_edges} edges, "
              f"{topology.num_leaves} leaves, depth {topology.max_depth}")
        print(topology.describe())
        print()

    print("SS over a binary tree of depth 2 (reservation defaults):")
    solution = api.solve_tree("ss", api.Topology.kary(2, 2))
    print(f"  any-leaf inconsistency  I = {solution.inconsistency_ratio:.6f}")
    print(f"  mean leaf inconsistency   = {solution.mean_leaf_inconsistency:.6f}")
    print(f"  fan-out-weighted          = {solution.fanout_weighted_inconsistency:.6f}")
    print("  per-leaf reach            = "
          f"{[f'{r:.4f}' for r in solution.reach_profile()]}")
    print(f"  message rate              = {solution.message_rate:.4f} tx/s per link")
    print()

    print("Chain reduction: a fan-out-1 tree IS the paper's chain model:")
    tree = api.solve_tree("hs", api.Topology.chain(6))
    chain = api.solve_multihop("hs", hops=6)
    assert tree.inconsistency_ratio == chain.inconsistency_ratio  # bitwise
    assert tree.message_rate == chain.message_rate
    print(f"  HS 6-hop chain: tree I = {tree.inconsistency_ratio:.8f} "
          f"== chain I = {chain.inconsistency_ratio:.8f} (exact)")
    print()

    print("Widening fan-out (star k): any-leaf vs mean-leaf inconsistency")
    for k in (1, 2, 4, 6):
        s = api.solve_tree("ss", api.Topology.star(k))
        print(f"  k={k}: any-leaf I = {s.inconsistency_ratio:.6f}   "
              f"mean leaf = {s.mean_leaf_inconsistency:.6f}")
    print("  (any-leaf grows with fan-out; the average receiver barely moves)")
    print()

    print("Tree scenarios through the generic executor:")
    result = api.run_scenario("tree_fanout", fidelity="smoke")
    print(result.to_text())
    print()

    print("Cross-check vs the per-edge-channel simulator (SS+RT, binary 2):")
    topology = api.Topology.kary(2, 2)
    params = reservation_defaults().replace(hops=topology.num_edges)
    model = api.solve_tree("ss+rt", topology)
    replications = simulate_tree_replications(
        MultiHopSimConfig(
            protocol=Protocol.SS_RT, params=params,
            horizon=4000.0, warmup=200.0,
        ),
        topology,
        replications=3,
    )
    interval = replications.interval("message_rate")
    print(f"  model message rate = {model.message_rate:.4f}")
    print(f"  sim   message rate = {interval}")


if __name__ == "__main__":
    main()
