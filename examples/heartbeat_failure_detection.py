#!/usr/bin/env python3
"""Hard state needs a failure detector: measuring its false-alarm rate.

Hard-state signaling cannot expire orphaned state; it depends on an
external signal (paper §II), e.g. a heartbeat protocol.  The analytic
model compresses the whole detector into one number — the spurious
detection rate ``lambda_x``.  This example:

1. runs a real heartbeat emitter/monitor pair over a lossy channel,
2. measures its false-alarm rate and compares it with the closed-form
   prediction ``p^k / interval``,
3. plugs the measured rate into the HS model to show how detector
   tuning moves hard state's consistency.

Run: ``python examples/heartbeat_failure_detection.py``
"""

from repro import Protocol, SingleHopModel, kazaa_defaults
from repro.protocols.heartbeat import build_heartbeat_pair, false_positive_rate
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline

LOSS_RATE = 0.05
DELAY = 0.03
HEARTBEAT_INTERVAL = 1.0
HORIZON = 400_000.0


def measure_false_alarm_rate(miss_threshold: int, seed: int = 5) -> float:
    """Simulate the detector with an always-alive emitter."""
    env = Environment()
    streams = RandomStreams(seed)
    emitter, monitor = build_heartbeat_pair(
        env,
        loss_rate=LOSS_RATE,
        delay=DELAY,
        interval=HEARTBEAT_INTERVAL,
        miss_threshold=miss_threshold,
        interval_timer=Timer(
            HEARTBEAT_INTERVAL, TimerDiscipline.DETERMINISTIC, streams.stream("hb")
        ),
        rng=streams.stream("chan"),
        on_failure=lambda: None,
    )
    env.run(until=HORIZON)
    del emitter
    return monitor.detections / HORIZON


def main() -> None:
    print(
        f"Heartbeat failure detector over a {LOSS_RATE:.0%}-loss channel "
        f"(interval {HEARTBEAT_INTERVAL:.0f}s)"
    )
    print(f"\n  {'miss thresh':>11s} {'predicted /s':>13s} {'measured /s':>12s}")
    measured_rates = {}
    for miss_threshold in (1, 2, 3):
        predicted = false_positive_rate(LOSS_RATE, HEARTBEAT_INTERVAL, miss_threshold)
        measured = measure_false_alarm_rate(miss_threshold)
        measured_rates[miss_threshold] = measured
        print(f"  {miss_threshold:11d} {predicted:13.3g} {measured:12.3g}")

    print("\nEffect on hard-state signaling consistency (single-hop defaults):")
    base = kazaa_defaults()
    print(f"  {'miss thresh':>11s} {'lambda_x':>10s} {'HS inconsistency':>17s}")
    for miss_threshold, rate in measured_rates.items():
        params = base.replace(external_false_signal_rate=max(rate, 1e-12))
        solution = SingleHopModel(Protocol.HS, params).solve()
        print(
            f"  {miss_threshold:11d} {rate:10.3g} "
            f"{solution.inconsistency_ratio:17.5f}"
        )
    print(
        "\nAn aggressive detector (threshold 1) floods HS with false removals;\n"
        "a patient one makes lambda_x negligible — which is why the model's\n"
        "default lambda_x = 1e-4 treats the detector as well-tuned."
    )


if __name__ == "__main__":
    main()
