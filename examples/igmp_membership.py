#!/usr/bin/env python3
"""IGMP-style group membership: soft state vs explicit leave.

IGMPv1 used pure soft state (membership expires when report refreshes
stop); IGMPv2 added an explicit Leave message — exactly the paper's
SS -> SS+ER evolution (§I).  The cost of staleness here is concrete:
multicast data keeps flowing to a host that already left.

This example tunes the refresh (membership-report) timer for both
designs, pricing staleness as wasted multicast bandwidth, and shows why
the explicit leave message was worth standardizing.

Run: ``python examples/igmp_membership.py``
"""

from repro import Protocol, SignalingParameters, SingleHopModel
from repro.analysis import optimize_refresh_timer

# A host joins a group for ~10 minutes; the LAN loses few messages.
IGMP_PARAMS = SignalingParameters(
    loss_rate=0.01,
    delay=0.002,  # 2 ms LAN
    update_rate=0.0,  # membership has no "update", only join/leave
    removal_rate=1.0 / 600.0,
    refresh_interval=10.0,
    timeout_interval=30.0,
    retransmission_interval=0.008,
)

# Cost weight: a stale entry keeps a 5 Mbit/s video stream flowing;
# expressed in "equivalent signaling messages" per second of staleness.
UNWANTED_TRAFFIC_WEIGHT = 50.0

REPORT_TIMERS = (2.0, 10.0, 30.0, 60.0, 125.0)  # 125 s = IGMPv2 default


def main() -> None:
    print("IGMP membership: pure soft state (v1) vs explicit leave (v2)")
    print(f"(staleness weight: {UNWANTED_TRAFFIC_WEIGHT:.0f} msg-equivalents/s)")
    print(
        f"\n  {'report timer':>12s} | {'v1 (SS) stale':>13s} {'cost':>8s} | "
        f"{'v2 (SS+ER) stale':>16s} {'cost':>8s}"
    )
    for report_timer in REPORT_TIMERS:
        params = IGMP_PARAMS.with_coupled_timers(report_timer)
        v1 = SingleHopModel(Protocol.SS, params).solve()
        v2 = SingleHopModel(Protocol.SS_ER, params).solve()
        print(
            f"  {report_timer:12.0f} | {v1.inconsistency_ratio:13.5f} "
            f"{v1.integrated_cost(UNWANTED_TRAFFIC_WEIGHT):8.3f} | "
            f"{v2.inconsistency_ratio:16.5f} "
            f"{v2.integrated_cost(UNWANTED_TRAFFIC_WEIGHT):8.3f}"
        )

    for protocol, name in ((Protocol.SS, "IGMPv1 (SS)"), (Protocol.SS_ER, "IGMPv2 (SS+ER)")):
        best = optimize_refresh_timer(
            protocol, IGMP_PARAMS, weight=UNWANTED_TRAFFIC_WEIGHT
        )
        print(
            f"\n{name}: optimal report timer ~ {best.refresh_interval:.1f}s "
            f"(timeout {best.timeout_interval:.1f}s), cost {best.cost:.3f}"
        )
    print(
        "\nThe explicit leave message removes the staleness floor that the\n"
        "timeout imposes on v1, so v2 tolerates long (cheap) report timers\n"
        "— which is exactly how IGMPv2 is deployed."
    )


if __name__ == "__main__":
    main()
