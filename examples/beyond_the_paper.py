#!/usr/bin/env python3
"""Beyond the paper: the extension toolkit in one tour.

Four analyses the paper does not include but its machinery enables:

1. **Transient analysis** — how long after a setup/update until the
   state is probably installed (matrix-exponential on the same chain)?
2. **Heterogeneous paths** — what happens when one link on a multi-hop
   path is much lossier than the rest?
3. **Staged refresh timers** (Pan & Schulzrinne, the paper's ref [12])
   — a sender-only upgrade to pure soft state.
4. **Receiver-driven NACKs** (Raman & McCanne, the paper's ref [15]) —
   measured against the paper's claim that it behaves like SS+RT.

Run: ``python examples/beyond_the_paper.py``
"""

from repro import Protocol, SingleHopModel, kazaa_defaults, reservation_defaults
from repro.analysis import (
    StagedRefreshConfig,
    compare_staged_refresh,
    equivalent_ss_rt_params,
    simulate_nack_replications,
)
from repro.core.multihop import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    MultiHopModel,
)
from repro.core.transient import consistency_probability, time_to_consistency


def transient_tour() -> None:
    print("1. Transient analysis: P(consistent) after state setup")
    params = kazaa_defaults().replace(loss_rate=0.1)
    times = (0.05, 0.12, 0.5, 2.0)
    header = "   " + " ".join(f"t={t:<6g}" for t in times)
    print(header + "   t(P>=0.99)")
    for protocol in (Protocol.SS, Protocol.SS_RT):
        model = SingleHopModel(protocol, params)
        probabilities = consistency_probability(model, times)
        t99 = time_to_consistency(model, target=0.99)
        cells = " ".join(f"{p:8.4f}" for p in probabilities)
        when = f"{t99:8.3f}s" if t99 != float("inf") else "   never"
        print(f"   {cells}   {when}   ({protocol.value})")
    print("   Reliable triggers shorten the tail: retransmissions beat "
          "waiting for the next refresh.\n")


def heterogeneous_tour() -> None:
    print("2. Heterogeneous path: one 20%-loss link in a 6-hop chain")
    params = reservation_defaults().replace(hops=6, loss_rate=0.005)
    clean = MultiHopModel(Protocol.SS, params).solve()
    print(f"   clean chain:           I = {clean.inconsistency_ratio:.5f}")
    for position in (0, 5):
        hops = [HeterogeneousHop(0.005, 0.03) for _ in range(6)]
        hops[position] = HeterogeneousHop(0.20, 0.03)
        dirty = HeterogeneousMultiHopModel(Protocol.SS, params, hops).solve()
        print(
            f"   bad link at hop {position + 1}:     "
            f"I = {dirty.inconsistency_ratio:.5f}"
        )
    print("   A lossy *first* link starves every downstream hop of "
          "refreshes;\n   a lossy last link only hurts itself.\n")


def staged_tour() -> None:
    print("3. Staged refresh timers on a 10%-loss channel")
    params = kazaa_defaults().replace(loss_rate=0.1)
    comparison = compare_staged_refresh(
        params,
        StagedRefreshConfig(fast_interval=2 * params.delay, fast_count=3),
        sessions=150,
        replications=3,
    )
    print(
        f"   inconsistency: {comparison.plain_ss.mean('inconsistency_ratio'):.4f} (SS) "
        f"-> {comparison.staged.mean('inconsistency_ratio'):.4f} (staged), "
        f"{comparison.inconsistency_improvement():.0%} better"
    )
    print(
        f"   message rate:  +{comparison.overhead_increase():.0%} "
        "(vs ~60x for running the fast timer globally)\n"
    )


def nack_tour() -> None:
    print("4. Receiver-driven NACKs vs the paper's SS+RT mapping")
    params = kazaa_defaults().replace(loss_rate=0.1)
    summary = simulate_nack_replications(params, sessions=150, replications=3)
    model_rt = SingleHopModel(Protocol.SS_RT, equivalent_ss_rt_params(params)).solve()
    print(
        f"   SS+NACK simulated I = {summary.nack.mean('inconsistency_ratio'):.4f};  "
        f"SS+RT(K=2*Delta) model I = {model_rt.inconsistency_ratio:.4f};  "
        f"plain SS I = {summary.base_ss.mean('inconsistency_ratio'):.4f}"
    )
    print("   The NACK variant indeed lands on the SS+RT point of the "
          "spectrum, as §IV argues.")


def main() -> None:
    transient_tour()
    heterogeneous_tour()
    staged_tour()
    nack_tour()


if __name__ == "__main__":
    main()
