#!/usr/bin/env python3
"""RSVP-style bandwidth reservation along a multi-hop path.

The paper's multi-hop analysis (§III-B) is motivated by reservation
signaling: every router on the path must hold the reservation state.
This example compares classic RSVP (pure soft state), RSVP with
staged/reliable refresh extensions (SS+RT; RFC 2961-style), and an
ST-II-like hard-state design (HS) as the path grows — and checks the
analytic predictions against the packet-level chain simulator.

Run: ``python examples/rsvp_reservation.py``
"""

from repro import Protocol, reservation_defaults
from repro.core.multihop import MultiHopModel
from repro.multihop import MultiHopSimConfig, MultiHopSimulation

PATH_LENGTHS = (4, 8, 16)


def main() -> None:
    base = reservation_defaults()
    print("Reservation state along a multi-hop path (per-hop loss "
          f"{base.loss_rate:.0%}, delay {base.delay * 1000:.0f}ms)")
    for hops in PATH_LENGTHS:
        params = base.replace(hops=hops)
        print(f"\npath length = {hops} hops")
        print(
            f"  {'protocol':8s} {'I (model)':>10s} {'I (sim)':>9s} "
            f"{'msgs/s (model)':>14s} {'msgs/s (sim)':>13s} {'last-hop I':>11s}"
        )
        for protocol in Protocol.multihop_family():
            model = MultiHopModel(protocol, params).solve()
            sim = MultiHopSimulation(
                MultiHopSimConfig(
                    protocol=protocol,
                    params=params,
                    horizon=4000.0,
                    warmup=200.0,
                    seed=17,
                )
            ).run()
            print(
                f"  {protocol.value:8s} {model.inconsistency_ratio:10.5f} "
                f"{sim.inconsistency_ratio:9.5f} {model.message_rate:14.4f} "
                f"{sim.message_rate:13.4f} {model.hop_inconsistency(hops):11.5f}"
            )
    print(
        "\nObservations (paper Figs. 17-18): consistency degrades roughly\n"
        "linearly with distance from the sender; hop-by-hop reliable triggers\n"
        "(RFC 2961-style) recover almost all of hard state's consistency while\n"
        "keeping soft state's simple failure model."
    )


if __name__ == "__main__":
    main()
