#!/usr/bin/env python3
"""Scenario variants through the declarative API (repro.api).

The canned figures are declarative ScenarioSpecs run by a generic
executor, so parameterized variants need no new experiment code: pick a
scenario, override preset fields, narrow the protocol set, choose a
fidelity, and read the provenance back out of the JSON artifact.

Run: ``python examples/scenario_variants.py``
"""

import repro.api as api
from repro.experiments.runner import ExperimentResult


def main() -> None:
    print("Registered scenarios:")
    for spec in api.list_scenarios():
        print(f"  {spec.scenario_id:8s} [{spec.artifact}] {spec.title}")
    print()

    print("Fig. 4 variant: 5% loss, SS vs HS only, smoke fidelity")
    result = api.run_scenario(
        "fig4",
        fidelity="smoke",
        overrides={"loss_rate": 0.05},
        protocols="ss,hs",
    )
    print(result.to_text())
    print()

    print("JSON artifact round-trip (schema-versioned, with provenance):")
    artifact = result.to_json(indent=None)
    restored = ExperimentResult.from_json(artifact)
    assert restored == result
    print(f"  {len(artifact)} bytes; provenance: {restored.provenance}")
    print()

    print("Ad-hoc sweep: message rate vs refresh timer, multi-hop SS/HS")
    for series in api.sweep(
        "refresh_interval",
        (1.0, 5.0, 25.0),
        metric="message_rate",
        protocols="ss,hs",
        multihop=True,
    ):
        cells = "  ".join(f"{y:8.4f}" for y in series.y)
        print(f"  {series.label:6s} {cells}")
    print()

    lossy = api.solve_singlehop("ss+er", loss_rate=0.05)
    print(f"One solve: SS+ER at 5% loss -> I = {lossy.inconsistency_ratio:.5f}")


if __name__ == "__main__":
    main()
