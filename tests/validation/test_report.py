"""Tests for the validation report data model and renderers."""

from __future__ import annotations

import json

import pytest

from repro.validation.report import (
    VALIDATION_SCHEMA_VERSION,
    CheckResult,
    PointCheck,
    ValidationReport,
)


def make_report(passed: bool = True) -> ValidationReport:
    good = PointCheck("p1", expected=1.0, observed=1.0, tolerance=0.0, passed=True)
    bad = PointCheck("p2", expected=1.0, observed=2.0, tolerance=0.5, passed=False)
    checks = (
        CheckResult(
            name="parity check",
            kind="parity",
            passed=True,
            detail="exact",
            points=(good,),
        ),
        CheckResult(
            name="sim check",
            kind="sim_model",
            passed=passed,
            points=(good,) if passed else (good, bad),
        ),
    )
    return ValidationReport(
        scenario_id="figX",
        title="a test scenario",
        fidelity="smoke",
        checks=checks,
        protocols=("SS", "HS"),
        backends=("dense", "template"),
        hop_counts=(5, 20),
    )


class TestDataModel:
    def test_passed_aggregates_checks(self):
        assert make_report(True).passed
        assert not make_report(False).passed

    def test_coverage_counts(self):
        coverage = make_report(False).coverage()
        assert coverage.checks == 2
        assert coverage.checks_passed == 1
        assert coverage.checks_failed == 1
        assert coverage.points == 3
        assert coverage.points_passed == 2
        assert coverage.points_failed == 1
        assert coverage.protocols == ("SS", "HS")
        assert coverage.hop_counts == (5, 20)

    def test_point_error(self):
        point = PointCheck("p", expected=1.0, observed=2.5, tolerance=1.0, passed=False)
        assert point.error == 1.5

    def test_check_lookup(self):
        report = make_report()
        assert report.check("parity check").kind == "parity"
        with pytest.raises(KeyError):
            report.check("nope")

    def test_unknown_check_kind_rejected(self):
        with pytest.raises(ValueError):
            CheckResult(name="x", kind="vibes", passed=True)

    def test_failures_listing(self):
        check = make_report(False).check("sim check")
        assert [point.label for point in check.failures()] == ["p2"]


class TestRendering:
    def test_text_mentions_verdict_and_counts(self):
        text = make_report(True).to_text()
        assert "PASS" in text
        assert "checks 2/2 passed" in text
        assert "backends: dense, template" in text

    def test_text_lists_failing_points(self):
        text = make_report(False).to_text()
        assert "FAIL" in text
        assert "p2" in text
        assert "expected 1" in text

    def test_json_round_trip(self):
        report = make_report(False)
        rebuilt = ValidationReport.from_json(report.to_json())
        assert rebuilt == report

    def test_json_carries_schema_version_and_coverage(self):
        document = json.loads(make_report().to_json())
        assert document["schema_version"] == VALIDATION_SCHEMA_VERSION
        assert document["passed"] is True
        assert document["coverage"]["points"] == 2

    def test_unsupported_schema_version_refused(self):
        document = json.loads(make_report().to_json())
        document["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            ValidationReport.from_json(json.dumps(document))
