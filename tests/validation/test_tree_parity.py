"""The tree slice of the backend parity matrix."""

import pytest

from repro.core.multihop import Topology
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.validation import tree_parity_checks, validate_scenario
from repro.validation.parity import tree_parity_topologies
from repro.validation.plan import build_plan

MULTIHOP = Protocol.multihop_family()


class TestTreeParityChecks:
    def test_smoke_slice_passes(self):
        checks = tree_parity_checks(reservation_defaults(), fidelity="smoke")
        assert checks, "empty parity slice"
        for check in checks:
            assert check.passed, check.name
            assert check.kind == "parity"
            assert check.points

    def test_covers_four_assertions_per_protocol(self):
        checks = tree_parity_checks(reservation_defaults(), fidelity="smoke")
        names = [check.name for check in checks]
        for protocol in MULTIHOP:
            assert f"tree {protocol.value}: unary==chain" in names
            assert f"tree {protocol.value}: dense==template" in names
            assert f"tree {protocol.value}: dense==batched" in names
            assert f"tree {protocol.value}: dense~sparse" in names

    def test_unary_points_demand_bit_parity(self):
        checks = tree_parity_checks(
            reservation_defaults(), protocols=(Protocol.SS,), fidelity="smoke"
        )
        unary = next(c for c in checks if c.name.endswith("unary==chain"))
        for point in unary.points:
            assert point.tolerance == 0.0
            assert point.expected == point.observed

    def test_fast_slice_passes_with_more_shapes(self):
        smoke_shapes = {name for name, _ in tree_parity_topologies("smoke")}
        fast_shapes = {name for name, _ in tree_parity_topologies("fast")}
        full_shapes = {name for name, _ in tree_parity_topologies("full")}
        assert smoke_shapes < fast_shapes < full_shapes
        checks = tree_parity_checks(
            reservation_defaults(), protocols=(Protocol.SS_RT,), fidelity="fast"
        )
        assert all(check.passed for check in checks)

    def test_topologies_are_trees_not_chains(self):
        for _, topology in tree_parity_topologies("full"):
            assert isinstance(topology, Topology)
            assert not topology.is_chain


class TestPlanWiring:
    def test_tree_family_plan(self):
        plan = build_plan("tree_fanout", "smoke")
        assert plan.parity_families == ("tree",)
        assert plan.hop_counts == ()
        assert plan.protocols == MULTIHOP
        assert not plan.has_simulation

    @pytest.mark.parametrize(
        "scenario_id", ["tree_fanout", "tree_depth", "tree_deep", "tree_wide"]
    )
    def test_validate_scenario_passes(self, scenario_id):
        report = validate_scenario(scenario_id, "smoke")
        assert report.passed, report.to_text()
        kinds = {check.kind for check in report.checks}
        assert kinds == {"artifact", "invariant", "parity"}

    def test_report_counts_tree_backends(self):
        report = validate_scenario("tree_fanout", "smoke")
        assert report.backends == (
            "dense",
            "template",
            "batched",
            "sparse",
            "structured",
            "lumped",
            "iterative",
        )
        assert report.hop_counts == ()

    def test_tree_scale_checks_present(self):
        report = validate_scenario("tree_fanout", "smoke")
        names = [check.name for check in report.checks]
        for protocol in MULTIHOP:
            assert f"tree-scale {protocol.value}: lumped~dense" in names
            assert f"tree-scale {protocol.value}: lumped==template" in names
            assert f"tree-scale {protocol.value}: iterative~dense" in names

    def test_lumped_template_checks_demand_bit_parity(self):
        from repro.validation.parity import tree_scale_parity_checks

        checks = tree_scale_parity_checks(
            reservation_defaults(), protocols=(Protocol.SS,), fidelity="smoke"
        )
        exact = next(c for c in checks if c.name.endswith("lumped==template"))
        for point in exact.points:
            assert point.tolerance == 0.0
            assert point.expected == point.observed
