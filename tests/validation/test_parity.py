"""Tests for the backend parity matrix."""

from __future__ import annotations

import pytest

from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.validation.parity import (
    BACKENDS,
    heterogeneous_parity_check,
    multihop_parity_checks,
    parity_parameter_points,
    singlehop_parity_checks,
)


class TestParameterPoints:
    def test_fidelity_grows_the_grid(self):
        base = kazaa_defaults()
        smoke = parity_parameter_points(base, "smoke")
        fast = parity_parameter_points(base, "fast")
        full = parity_parameter_points(base, "full")
        assert len(smoke) == 1
        assert len(smoke) < len(fast) < len(full)

    def test_labels_unique(self):
        labels = [label for label, _ in parity_parameter_points(kazaa_defaults(), "full")]
        assert len(labels) == len(set(labels))

    def test_points_validate_against_preset(self):
        # Every generated point must be a legal parameterization.
        for _, params in parity_parameter_points(reservation_defaults(), "full"):
            assert 0.0 <= params.loss_rate < 1.0


class TestSingleHopParity:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_all_backends_agree_at_base(self, protocol):
        checks = singlehop_parity_checks(
            kazaa_defaults(), (protocol,), fidelity="smoke"
        )
        assert len(checks) == 3  # template, batched, sparse
        for check in checks:
            assert check.passed, check.name
            assert check.points

    def test_exact_checks_record_zero_tolerance(self):
        checks = singlehop_parity_checks(
            kazaa_defaults(), (Protocol.SS,), fidelity="smoke"
        )
        exact = [c for c in checks if "==" in c.name]
        assert exact
        for check in exact:
            assert all(point.tolerance == 0.0 for point in check.points)

    def test_fast_fidelity_covers_lossy_variants(self):
        checks = singlehop_parity_checks(
            kazaa_defaults(), (Protocol.SS,), fidelity="fast"
        )
        labels = {p.label for c in checks for p in c.points}
        assert any("loss=0.2" in label for label in labels)


class TestMultiHopParity:
    def test_two_hop_counts_all_protocols(self):
        checks = multihop_parity_checks(
            reservation_defaults(), (5, 20), fidelity="smoke"
        )
        # 3 backend pairs per multihop protocol.
        assert len(checks) == 3 * len(Protocol.multihop_family())
        for check in checks:
            assert check.passed, check.name
        labels = {p.label for c in checks for p in c.points}
        assert any(label.startswith("N=5 ") for label in labels)
        assert any(label.startswith("N=20 ") for label in labels)


class TestHeterogeneousParity:
    def test_uniform_and_congested_profiles_exact(self):
        check = heterogeneous_parity_check(reservation_defaults().replace(hops=6))
        assert check.passed, check.detail
        labels = {p.label for p in check.points}
        assert any("uniform" in label for label in labels)
        assert any("congested" in label for label in labels)
        assert all(p.tolerance == 0.0 for p in check.points)


class TestBackendListing:
    def test_matrix_names_all_seven_paths(self):
        assert BACKENDS == (
            "dense",
            "template",
            "batched",
            "sparse",
            "structured",
            "lumped",
            "iterative",
        )
