"""Tests for validation-plan derivation and execution."""

from __future__ import annotations

import pytest

import repro.api as api
from repro.experiments.spec import ScenarioError, scenario
from repro.validation import (
    ValidationReport,
    build_plan,
    execute_plan,
    validate_scenario,
)


class TestBuildPlan:
    def test_singlehop_plan(self):
        plan = build_plan("fig4", "smoke")
        assert plan.parity_families == ("singlehop",)
        assert plan.hop_counts == ()
        assert not plan.has_simulation
        assert len(plan.protocols) == 5

    def test_sim_scenario_plan(self):
        plan = build_plan("fig11", "smoke")
        assert plan.has_simulation
        assert len(plan.sim_panels) == 2

    def test_multihop_plan_has_two_hop_counts(self):
        plan = build_plan("fig17", "smoke")
        assert plan.parity_families == ("multihop",)
        assert len(plan.hop_counts) == 2
        # Protocols narrowed to the multi-hop family.
        assert all(p in plan.spec.protocols for p in plan.protocols)

    def test_heterogeneous_plan(self):
        plan = build_plan("scaling", "smoke")
        assert plan.parity_families == ("multihop", "heterogeneous")

    def test_hop_counts_clamped_below_sparse_crossover(self):
        # Exact dense==template==batched parity is only guaranteed in
        # the dense regime; a huge-chain scenario must validate parity
        # on a clamped chain, not through the splu reference.
        from repro.core.markov import SPARSE_STATE_THRESHOLD
        from repro.experiments.spec import (
            Axis,
            PanelSpec,
            ScenarioSpec,
            SeriesPlan,
        )
        from repro.core.protocols import Protocol

        spec = ScenarioSpec(
            scenario_id="huge-chain",
            title="t",
            artifact="test",
            family="multihop",
            preset="reservation",
            protocols=Protocol.multihop_family(),
            base_overrides=(("hops", 128),),
            axes=(Axis("hops", "explicit", values=(2.0,)),),
            panels=(
                PanelSpec(
                    "p", "x", "y",
                    (SeriesPlan("sweep", axis="hops", binder="hops",
                                metric="inconsistency_ratio"),),
                ),
            ),
        )
        plan = build_plan(spec, "smoke")
        dense_limit = (SPARSE_STATE_THRESHOLD - 2) // 2 - 1
        assert all(h <= dense_limit for h in plan.hop_counts)
        assert len(plan.hop_counts) == 2

    def test_parity_slices_memoized_across_reports(self):
        # Nine single-hop scenarios share the Kazaa base preset; the
        # parity grid must be solved once, not per scenario.
        from repro.validation.plan import _cached_parity_slice

        _cached_parity_slice.cache_clear()
        execute_plan(build_plan("fig4", "smoke"))
        after_first = _cached_parity_slice.cache_info()
        execute_plan(build_plan("fig5", "smoke"))
        after_second = _cached_parity_slice.cache_info()
        assert after_first.misses == 1
        assert after_second.misses == 1
        assert after_second.hits == after_first.hits + 1

    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError):
            build_plan("fig99", "smoke")

    def test_unknown_fidelity_raises_scenario_error(self):
        with pytest.raises(ScenarioError):
            build_plan("fig4", "warp")


class TestExecutePlan:
    @pytest.fixture(scope="class")
    def fig4_report(self):
        return execute_plan(build_plan("fig4", "smoke"))

    def test_report_passes_and_covers(self, fig4_report):
        assert fig4_report.passed
        coverage = fig4_report.coverage()
        assert coverage.checks_failed == 0
        assert coverage.points > 0
        assert fig4_report.backends == (
            "dense",
            "template",
            "batched",
            "sparse",
            "structured",
            "lumped",
            "iterative",
        )

    def test_report_carries_check_kinds(self, fig4_report):
        kinds = {check.kind for check in fig4_report.checks}
        assert {"artifact", "invariant", "parity"} <= kinds

    def test_report_round_trips_as_json(self, fig4_report):
        rebuilt = ValidationReport.from_json(fig4_report.to_json())
        assert rebuilt == fig4_report

    def test_sim_scenario_produces_equivalence_checks(self):
        report = validate_scenario("fig11", "smoke")
        assert report.passed
        sim_checks = [c for c in report.checks if c.kind == "sim_model"]
        assert len(sim_checks) == 2  # one per panel/metric
        for check in sim_checks:
            assert check.points
            # One simulated point per protocol at smoke fidelity.
            assert len(check.points) == 5


class TestApiSurface:
    def test_api_validate_scenario(self):
        report = api.validate_scenario("table1", "smoke")
        assert isinstance(report, ValidationReport)
        assert report.scenario_id == "table1"
        assert report.passed

    def test_spec_instance_accepted(self):
        report = validate_scenario(scenario("fig4"), "smoke")
        assert report.scenario_id == "fig4"
