"""Property-based fuzzing of the public API's model invariants.

Random valid parameter presets/overrides are generated through the
:mod:`repro.validation.strategies` Hypothesis strategies and pushed
through :mod:`repro.api`; every generated point must uphold the model's
structural invariants — these are properties of the *mathematics*, so
any counterexample is a solver bug, not a bad input.
"""

from __future__ import annotations

import dataclasses

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

import repro.api as api  # noqa: E402
from repro.core.parameters import reservation_defaults  # noqa: E402
from repro.core.multihop.heterogeneous import (  # noqa: E402
    hops_from_parameters,
    reach_profile,
)
from repro.experiments.runner import ExperimentResult, Panel  # noqa: E402
from repro.experiments.spec import ScenarioError, apply_overrides  # noqa: E402
from repro.validation import strategies as vst  # noqa: E402

_MULTIHOP_FIELDS = {field.name for field in dataclasses.fields(reservation_defaults())}

# The solve-backed properties run fewer examples than pure-data ones:
# each example is a full CTMC solve.
SOLVES = settings(max_examples=25, deadline=None)
DATA = settings(max_examples=100, deadline=None)


class TestSingleHopInvariants:
    @SOLVES
    @given(protocol=vst.protocols(), overrides=vst.singlehop_overrides())
    def test_stationary_distribution_sums_to_one(self, protocol, overrides):
        solution = api.solve_singlehop(protocol, **overrides)
        total = sum(solution.stationary.values())
        assert total == pytest.approx(1.0, abs=1e-9)
        assert all(p >= 0.0 for p in solution.stationary.values())

    @SOLVES
    @given(protocol=vst.protocols(), overrides=vst.singlehop_overrides())
    def test_absorption_time_positive_and_metrics_sane(self, protocol, overrides):
        solution = api.solve_singlehop(protocol, **overrides)
        assert solution.expected_receiver_lifetime > 0.0
        assert 0.0 <= solution.inconsistency_ratio <= 1.0
        assert solution.message_rate >= 0.0

    @SOLVES
    @given(overrides=vst.multihop_overrides())
    def test_multihop_stationary_sums_to_one(self, overrides):
        solution = api.solve_multihop("ss", **overrides)
        assert sum(solution.stationary.values()) == pytest.approx(1.0, abs=1e-9)
        assert 0.0 <= solution.inconsistency_ratio <= 1.0


class TestReachMonotonicity:
    @DATA
    @given(
        hops=st.integers(min_value=1, max_value=12),
        loss_low=st.floats(min_value=0.0, max_value=0.5),
        bump=st.floats(min_value=0.0, max_value=0.4),
    )
    def test_reach_probability_monotone_in_loss(self, hops, loss_low, bump):
        lossier = min(0.9, loss_low + bump)
        low = reservation_defaults().replace(hops=hops, loss_rate=loss_low)
        high = reservation_defaults().replace(hops=hops, loss_rate=lossier)
        for hop in range(hops + 1):
            assert (
                high.refresh_reach_probability(hop)
                <= low.refresh_reach_probability(hop)
            )

    @DATA
    @given(
        hops=st.integers(min_value=1, max_value=12),
        loss=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_reach_profile_non_increasing_along_the_path(self, hops, loss):
        params = reservation_defaults().replace(hops=hops, loss_rate=loss)
        profile = reach_profile(hops_from_parameters(params))
        # reach[0] = 1 plus one survival probability per link.
        assert len(profile) == hops + 1
        assert profile[0] == 1.0
        assert all(0.0 <= p <= 1.0 for p in profile)
        for nearer, farther in zip(profile, profile[1:]):
            assert farther <= nearer


class TestOverrideValidation:
    @DATA
    @given(
        key=st.text(min_size=1, max_size=12).filter(
            lambda k: k not in _MULTIHOP_FIELDS
        ),
        value=st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_unknown_override_always_raises_scenario_error(self, key, value):
        with pytest.raises(ScenarioError):
            apply_overrides(reservation_defaults(), {key: value})


class TestArtifactRoundTrip:
    @DATA
    @given(result=vst.experiment_results())
    def test_json_round_trip_lossless(self, result):
        rebuilt = ExperimentResult.from_json(result.to_json())
        assert rebuilt == result

    @DATA
    @given(one_series=vst.series())
    def test_series_survive_rendering(self, one_series):
        # to_text/to_csv must never crash on any finite-valued series.
        panel = Panel("p", "x", "y", (one_series,), shared_x=False)
        result = ExperimentResult("fuzz", "t", (panel,))
        assert result.to_text()
        assert result.to_csv()
