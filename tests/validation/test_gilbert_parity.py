"""The Gilbert-Elliott slice of the backend parity matrix."""

import pytest

from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.validation import (
    gilbert_multihop_parity_checks,
    gilbert_parity_channels,
    gilbert_singlehop_parity_checks,
    validate_scenario,
)
from repro.validation.plan import build_plan

MULTIHOP = Protocol.multihop_family()


class TestGilbertParityChannels:
    def test_channel_set_scales_with_fidelity(self):
        base = kazaa_defaults()
        smoke = dict(gilbert_parity_channels(base, "smoke"))
        fast = dict(gilbert_parity_channels(base, "fast"))
        full = dict(gilbert_parity_channels(base, "full"))
        assert set(smoke) < set(fast) < set(full)
        assert smoke["degenerate"].is_degenerate
        assert not smoke["bursty"].is_degenerate

    def test_every_channel_holds_the_average_loss(self):
        base = kazaa_defaults()
        for _, gilbert in gilbert_parity_channels(base, "full"):
            assert gilbert.average_loss == pytest.approx(base.loss_rate)


class TestGilbertSingleHopParity:
    def test_smoke_slice_passes(self):
        checks = gilbert_singlehop_parity_checks(kazaa_defaults(), fidelity="smoke")
        assert checks, "empty parity slice"
        for check in checks:
            assert check.passed, check.name
            assert check.kind == "parity"
            assert check.points

    def test_covers_three_assertions_per_protocol(self):
        checks = gilbert_singlehop_parity_checks(kazaa_defaults(), fidelity="smoke")
        names = [check.name for check in checks]
        for protocol in Protocol:
            assert f"gilbert singlehop {protocol.value}: dense==template" in names
            assert f"gilbert singlehop {protocol.value}: degenerate==iid" in names
            assert f"gilbert singlehop {protocol.value}: dense~sparse" in names

    def test_degenerate_points_demand_bit_parity(self):
        checks = gilbert_singlehop_parity_checks(
            kazaa_defaults(), protocols=(Protocol.SS,), fidelity="smoke"
        )
        degenerate = next(c for c in checks if c.name.endswith("degenerate==iid"))
        assert degenerate.points
        for point in degenerate.points:
            assert point.tolerance == 0.0
            assert point.expected == point.observed


class TestGilbertMultiHopParity:
    def test_smoke_slice_passes(self):
        checks = gilbert_multihop_parity_checks(
            reservation_defaults().replace(hops=4), hop_counts=(2, 4)
        )
        assert checks, "empty parity slice"
        for check in checks:
            assert check.passed, check.name
            assert check.kind == "parity"
            assert check.points

    def test_covers_three_assertions_per_protocol(self):
        checks = gilbert_multihop_parity_checks(
            reservation_defaults().replace(hops=3), hop_counts=(3,)
        )
        names = [check.name for check in checks]
        for protocol in MULTIHOP:
            assert f"gilbert multihop {protocol.value}: dense==template" in names
            assert f"gilbert multihop {protocol.value}: degenerate==iid" in names
            assert f"gilbert multihop {protocol.value}: dense~sparse" in names

    def test_degenerate_metric_points_demand_bit_parity(self):
        checks = gilbert_multihop_parity_checks(
            reservation_defaults().replace(hops=3),
            hop_counts=(3,),
            protocols=(Protocol.SS,),
        )
        degenerate = next(c for c in checks if c.name.endswith("degenerate==iid"))
        metric_points = [
            p
            for p in degenerate.points
            if "hop_inconsistency" not in p.label
        ]
        assert metric_points
        for point in metric_points:
            assert point.tolerance == 0.0
            assert point.expected == point.observed


class TestPlanWiring:
    def test_singlehop_burst_plan(self):
        plan = build_plan("burst_loss", "smoke")
        assert plan.parity_families == ("singlehop", "gilbert_singlehop")
        assert plan.hop_counts == ()
        assert plan.protocols == tuple(Protocol)
        assert plan.has_simulation

    def test_multihop_burst_plan(self):
        plan = build_plan("burst_loss_hops", "smoke")
        assert plan.parity_families == ("multihop", "gilbert_multihop")
        assert plan.hop_counts
        assert plan.protocols == MULTIHOP
        assert plan.has_simulation

    def test_link_flap_plan_is_simulation_only(self):
        plan = build_plan("link_flap", "smoke")
        assert plan.parity_families == ("multihop",)
        assert plan.protocols == MULTIHOP
        assert plan.has_simulation

    @pytest.mark.parametrize(
        "scenario_id", ["burst_loss", "burst_loss_hops", "link_flap"]
    )
    def test_validate_scenario_passes(self, scenario_id):
        report = validate_scenario(scenario_id, "smoke")
        assert report.passed, report.to_text()

    def test_burst_scenarios_check_sim_against_model(self):
        report = validate_scenario("burst_loss_hops", "smoke")
        kinds = {check.kind for check in report.checks}
        assert "sim_model" in kinds

    def test_link_flap_has_no_model_twin(self):
        report = validate_scenario("link_flap", "smoke")
        kinds = {check.kind for check in report.checks}
        assert "sim_model" not in kinds
