"""Tests for the Student-t sim-vs-model equivalence margins."""

from __future__ import annotations

import math

import pytest

from repro.validation.equivalence import (
    CURVE_EQUIVALENCE_CRITERIA,
    SIM_EQUIVALENCE_CRITERIA,
    CurveCriterion,
    EquivalenceCriterion,
    equivalence_curve,
    equivalence_point,
)


class TestCriterion:
    def test_allowance_takes_the_widest_margin(self):
        criterion = EquivalenceCriterion(ci_multiplier=2.0, rel_tol=0.1, abs_floor=0.5)
        assert criterion.allowance(model=10.0, half_width=0.1) == 1.0  # rel term
        assert criterion.allowance(model=10.0, half_width=3.0) == 6.0  # CI term
        assert criterion.allowance(model=0.0, half_width=0.0) == 0.5  # floor

    def test_negative_margins_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceCriterion(rel_tol=-0.1)

    def test_builtin_criteria_cover_sim_metrics(self):
        # Every simulated metric the spec layer exposes has margins.
        from repro.experiments.spec import SIM_METRICS

        assert set(SIM_METRICS) <= set(SIM_EQUIVALENCE_CRITERIA)


class TestEquivalencePoint:
    CRITERION = EquivalenceCriterion(ci_multiplier=2.0, rel_tol=0.1, abs_floor=0.0)

    def test_inside_ci_passes(self):
        point = equivalence_point("p", model=1.0, sim_mean=1.5, half_width=0.3,
                                  criterion=self.CRITERION)
        assert point.passed
        assert point.tolerance == pytest.approx(0.6)

    def test_outside_all_margins_fails(self):
        point = equivalence_point("p", model=1.0, sim_mean=2.0, half_width=0.1,
                                  criterion=self.CRITERION)
        assert not point.passed
        assert point.error == pytest.approx(1.0)

    def test_tight_ci_relies_on_relative_band(self):
        # Many replications shrink the CI; the documented model bias
        # band keeps a systematically-offset-but-close sim point green.
        point = equivalence_point("p", model=1.0, sim_mean=1.08, half_width=1e-6,
                                  criterion=self.CRITERION)
        assert point.passed

    @pytest.mark.parametrize("broken", [float("nan"), float("inf")])
    def test_non_finite_values_fail_instead_of_raising(self, broken):
        point = equivalence_point("p", model=broken, sim_mean=1.0, half_width=0.1,
                                  criterion=self.CRITERION)
        assert not point.passed
        point = equivalence_point("p", model=1.0, sim_mean=broken, half_width=0.1,
                                  criterion=self.CRITERION)
        assert not point.passed

    def test_zero_half_width_uses_other_margins(self):
        # Zero-variance replications (all-identical samples) must not
        # collapse the margin to zero.
        point = equivalence_point("p", model=1.0, sim_mean=1.05, half_width=0.0,
                                  criterion=self.CRITERION)
        assert point.passed
        assert math.isfinite(point.tolerance)


class TestCurveCriterion:
    CRITERION = CurveCriterion(
        point=EquivalenceCriterion(ci_multiplier=2.0, rel_tol=0.0, abs_floor=0.1),
        max_violation_fraction=0.25,
    )

    def test_all_points_within_band_passes(self):
        times = (1.0, 2.0, 3.0, 4.0)
        model = (0.5, 0.6, 0.7, 0.8)
        sim = (0.55, 0.65, 0.75, 0.85)
        points, passed = equivalence_curve(
            "SS", times, model, sim, (0.0,) * 4, self.CRITERION
        )
        assert passed
        assert len(points) == 4
        assert all(p.passed for p in points)

    def test_one_violation_in_four_is_within_budget(self):
        times = (1.0, 2.0, 3.0, 4.0)
        model = (0.5, 0.6, 0.7, 0.8)
        sim = (0.55, 0.65, 0.75, 0.2)  # last point blown
        points, passed = equivalence_curve(
            "SS", times, model, sim, (0.0,) * 4, self.CRITERION
        )
        assert passed
        assert sum(1 for p in points if not p.passed) == 1

    def test_too_many_violations_fail_the_curve(self):
        times = (1.0, 2.0, 3.0, 4.0)
        model = (0.5, 0.6, 0.7, 0.8)
        sim = (0.1, 0.1, 0.75, 0.85)  # half the grid blown
        _, passed = equivalence_curve(
            "SS", times, model, sim, (0.0,) * 4, self.CRITERION
        )
        assert not passed

    def test_wide_cis_widen_the_bands(self):
        times = (1.0, 2.0)
        model = (0.5, 0.5)
        sim = (0.9, 0.9)
        _, tight = equivalence_curve("SS", times, model, sim, (0.0, 0.0), self.CRITERION)
        _, loose = equivalence_curve("SS", times, model, sim, (0.3, 0.3), self.CRITERION)
        assert not tight
        assert loose

    def test_empty_grid_fails(self):
        points, passed = equivalence_curve("SS", (), (), (), (), self.CRITERION)
        assert points == ()
        assert not passed

    def test_point_labels_carry_grid_times(self):
        points, _ = equivalence_curve(
            "SS", (2.5,), (0.5,), (0.5,), (0.0,), self.CRITERION
        )
        assert points[0].label == "SS @ t=2.5"

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CurveCriterion(max_violation_fraction=1.0)
        with pytest.raises(ValueError):
            CurveCriterion(max_violation_fraction=-0.1)

    def test_default_consistency_criterion_registered(self):
        criterion = CURVE_EQUIVALENCE_CRITERIA["consistency"]
        assert criterion.point.abs_floor > 0
        assert 0.0 < criterion.max_violation_fraction < 1.0
