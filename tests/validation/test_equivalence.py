"""Tests for the Student-t sim-vs-model equivalence margins."""

from __future__ import annotations

import math

import pytest

from repro.validation.equivalence import (
    SIM_EQUIVALENCE_CRITERIA,
    EquivalenceCriterion,
    equivalence_point,
)


class TestCriterion:
    def test_allowance_takes_the_widest_margin(self):
        criterion = EquivalenceCriterion(ci_multiplier=2.0, rel_tol=0.1, abs_floor=0.5)
        assert criterion.allowance(model=10.0, half_width=0.1) == 1.0  # rel term
        assert criterion.allowance(model=10.0, half_width=3.0) == 6.0  # CI term
        assert criterion.allowance(model=0.0, half_width=0.0) == 0.5  # floor

    def test_negative_margins_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceCriterion(rel_tol=-0.1)

    def test_builtin_criteria_cover_sim_metrics(self):
        # Every simulated metric the spec layer exposes has margins.
        from repro.experiments.spec import SIM_METRICS

        assert set(SIM_METRICS) <= set(SIM_EQUIVALENCE_CRITERIA)


class TestEquivalencePoint:
    CRITERION = EquivalenceCriterion(ci_multiplier=2.0, rel_tol=0.1, abs_floor=0.0)

    def test_inside_ci_passes(self):
        point = equivalence_point("p", model=1.0, sim_mean=1.5, half_width=0.3,
                                  criterion=self.CRITERION)
        assert point.passed
        assert point.tolerance == pytest.approx(0.6)

    def test_outside_all_margins_fails(self):
        point = equivalence_point("p", model=1.0, sim_mean=2.0, half_width=0.1,
                                  criterion=self.CRITERION)
        assert not point.passed
        assert point.error == pytest.approx(1.0)

    def test_tight_ci_relies_on_relative_band(self):
        # Many replications shrink the CI; the documented model bias
        # band keeps a systematically-offset-but-close sim point green.
        point = equivalence_point("p", model=1.0, sim_mean=1.08, half_width=1e-6,
                                  criterion=self.CRITERION)
        assert point.passed

    @pytest.mark.parametrize("broken", [float("nan"), float("inf")])
    def test_non_finite_values_fail_instead_of_raising(self, broken):
        point = equivalence_point("p", model=broken, sim_mean=1.0, half_width=0.1,
                                  criterion=self.CRITERION)
        assert not point.passed
        point = equivalence_point("p", model=1.0, sim_mean=broken, half_width=0.1,
                                  criterion=self.CRITERION)
        assert not point.passed

    def test_zero_half_width_uses_other_margins(self):
        # Zero-variance replications (all-identical samples) must not
        # collapse the margin to zero.
        point = equivalence_point("p", model=1.0, sim_mean=1.05, half_width=0.0,
                                  criterion=self.CRITERION)
        assert point.passed
        assert math.isfinite(point.tolerance)
