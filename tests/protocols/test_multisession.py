"""Tests for concurrent multi-session simulation.

These validate the paper's §III reduction — multiple pieces of state
behave as independent instantiations of the single-state model.
"""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.multisession import MultiSessionSimulation
from repro.protocols.session import SingleHopSimulation


def config_for(params, protocol=Protocol.SS_ER, sessions=60, seed=31):
    return SingleHopSimConfig(
        protocol=protocol, params=params, sessions=sessions, seed=seed
    )


class TestMechanics:
    def test_instance_count_validated(self, params):
        with pytest.raises(ValueError):
            MultiSessionSimulation(config_for(params), instances=0)

    def test_per_session_results_returned(self, params):
        result = MultiSessionSimulation(config_for(params, sessions=15), 3).run()
        assert result.session_count == 3
        assert all(r.sessions == 15 for r in result.per_session)

    def test_sessions_use_distinct_randomness(self, params):
        result = MultiSessionSimulation(config_for(params, sessions=20), 3).run()
        ratios = [r.inconsistency_ratio for r in result.per_session]
        assert len(set(ratios)) == 3

    def test_completion_snapshots_are_per_pair(self, params):
        result = MultiSessionSimulation(config_for(params, sessions=15), 3).run()
        times = [r.sim_time for r in result.per_session]
        assert len(set(times)) == 3  # independent workloads end apart


class TestIndependenceReduction:
    """'Multiple pieces of state = multiple instantiations' (§III)."""

    def test_per_session_inconsistency_matches_solo_run(self, params):
        config = config_for(params, sessions=80)
        concurrent = MultiSessionSimulation(config, 4).run()
        model = SingleHopModel(config.protocol, params).solve()
        # Each concurrent pair behaves like the single-pair model.
        assert concurrent.mean_inconsistency_ratio == pytest.approx(
            model.inconsistency_ratio, rel=0.5, abs=2e-3
        )

    def test_aggregate_message_rate_scales_linearly(self, params):
        small = MultiSessionSimulation(config_for(params, sessions=40), 2).run()
        large = MultiSessionSimulation(config_for(params, sessions=40), 6).run()
        ratio = large.aggregate_message_rate() / small.aggregate_message_rate()
        assert ratio == pytest.approx(3.0, rel=0.2)

    def test_concurrent_matches_isolated_execution(self, params):
        """The shared clock must not change any pair's outcome."""
        config = config_for(params, sessions=25, seed=77)
        concurrent = MultiSessionSimulation(config, 2).run()
        # Re-run the first instance alone with its derived seed.
        from repro.sim.randomness import RandomStreams

        solo_config = config.replace(seed=RandomStreams(config.seed).spawn(0).seed)
        solo = SingleHopSimulation(solo_config).run()
        first = concurrent.per_session[0]
        assert first.inconsistency_ratio == pytest.approx(
            solo.inconsistency_ratio, rel=1e-9
        )
        assert first.sim_time == pytest.approx(solo.sim_time, rel=1e-9)

    def test_total_messages_sum_per_session_counts(self, params):
        result = MultiSessionSimulation(config_for(params, sessions=10), 3).run()
        assert result.total_messages == sum(
            r.total_messages for r in result.per_session
        )
