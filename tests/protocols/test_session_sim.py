"""Integration tests: the full single-hop simulation against the model.

The central validation of the reproduction: for every protocol, the
packet-level simulator and the analytic chain must agree on the paper's
metrics within tolerances comparable to the paper's own (Fig. 11:
inconsistency within a few percent relative, message rate within
5-15%).
"""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import SingleHopSimulation, simulate_replications
from repro.sim.randomness import TimerDiscipline


def run_sim(protocol, params, sessions=200, seed=404, **kwargs):
    config = SingleHopSimConfig(
        protocol=protocol, params=params, sessions=sessions, seed=seed, **kwargs
    )
    return SingleHopSimulation(config).run()


class TestMechanics:
    def test_sessions_complete(self, params):
        result = run_sim(Protocol.SS, params, sessions=20)
        assert result.sessions == 20
        assert result.sim_time > 0

    def test_inconsistent_time_bounded(self, params):
        result = run_sim(Protocol.SS, params, sessions=20)
        assert 0.0 <= result.inconsistent_time <= result.sim_time

    def test_message_counts_present(self, params):
        result = run_sim(Protocol.SS, params, sessions=20)
        assert result.message_counts["trigger"] >= 20  # one per install
        assert result.message_counts["refresh"] > 0

    def test_ss_sends_only_triggers_and_refreshes(self, params):
        result = run_sim(Protocol.SS, params, sessions=30)
        assert set(result.message_counts) <= {"trigger", "refresh"}

    def test_hs_message_kinds(self, params):
        result = run_sim(Protocol.HS, params, sessions=30)
        kinds = set(result.message_counts)
        assert "refresh" not in kinds
        assert {"trigger", "ack", "removal", "removal_ack"} <= kinds

    def test_ss_er_sends_removals(self, params):
        result = run_sim(Protocol.SS_ER, params, sessions=30)
        assert result.message_counts["removal"] >= 25  # ~one per session

    def test_reproducible_with_same_seed(self, params):
        a = run_sim(Protocol.SS_RTR, params, sessions=30, seed=5)
        b = run_sim(Protocol.SS_RTR, params, sessions=30, seed=5)
        assert a.inconsistency_ratio == b.inconsistency_ratio
        assert a.message_counts == b.message_counts

    def test_different_seeds_differ(self, params):
        a = run_sim(Protocol.SS, params, sessions=30, seed=5)
        b = run_sim(Protocol.SS, params, sessions=30, seed=6)
        assert a.inconsistency_ratio != b.inconsistency_ratio

    def test_lossless_channel_no_timeout_removals_for_er(self, lossless_params):
        result = run_sim(Protocol.SS_ER, lossless_params, sessions=30)
        assert result.timeout_removals == 0

    def test_false_signals_only_for_hs(self, params):
        boosted = params.replace(external_false_signal_rate=0.01)
        hs = run_sim(Protocol.HS, boosted, sessions=50)
        ss = run_sim(Protocol.SS, boosted, sessions=50)
        assert hs.false_signal_removals > 0
        assert ss.false_signal_removals == 0

    def test_mean_cycle_length_near_session_length(self, params):
        result = run_sim(Protocol.SS_ER, params, sessions=100)
        assert result.mean_cycle_length == pytest.approx(
            params.mean_session_length, rel=0.3
        )

    def test_normalized_message_rate_requires_positive_rate(self, params):
        result = run_sim(Protocol.SS, params, sessions=10)
        with pytest.raises(ValueError):
            result.normalized_message_rate(0.0)

    def test_invalid_config_rejected(self, params):
        with pytest.raises(ValueError):
            SingleHopSimConfig(protocol=Protocol.SS, params=params, sessions=0)
        with pytest.raises(ValueError):
            SingleHopSimConfig(
                protocol=Protocol.SS, params=params.replace(removal_rate=0.0)
            )


class TestModelAgreement:
    """Simulation vs analytic model, protocol by protocol."""

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_matches_model(self, protocol, params):
        model = SingleHopModel(protocol, params).solve()
        result = run_sim(protocol, params, sessions=400, seed=2024)
        assert result.inconsistency_ratio == pytest.approx(
            model.inconsistency_ratio, rel=0.35, abs=5e-4
        )

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_message_rate_matches_model(self, protocol, params):
        model = SingleHopModel(protocol, params).solve()
        result = run_sim(protocol, params, sessions=400, seed=2024)
        assert result.normalized_message_rate(params.removal_rate) == pytest.approx(
            model.normalized_message_rate, rel=0.2
        )

    def test_exponential_timers_track_model_for_hs(self, params):
        # HS has no refresh/timeout race, so simulating it with
        # exponential timers realizes the model's assumptions directly.
        protocol = Protocol.HS
        model = SingleHopModel(protocol, params).solve()
        result = run_sim(
            protocol,
            params,
            sessions=400,
            seed=77,
            timer_discipline=TimerDiscipline.EXPONENTIAL,
            delay_discipline=TimerDiscipline.EXPONENTIAL,
        )
        assert result.inconsistency_ratio == pytest.approx(
            model.inconsistency_ratio, rel=0.25
        )

    def test_exponential_timeout_race_hurts_soft_state(self, params):
        # A *memoryless* state-timeout races each refresh and fires
        # first with probability R/(R+T) — so a genuinely exponential-
        # timer SS protocol false-removes constantly.  This is why the
        # paper's protocols use deterministic timers and why its model
        # treats the exponential assumption as a solution device (it
        # folds false removal into the separate lambda_f rate instead).
        result = run_sim(
            Protocol.SS,
            params,
            sessions=100,
            seed=77,
            timer_discipline=TimerDiscipline.EXPONENTIAL,
        )
        deterministic = run_sim(Protocol.SS, params, sessions=100, seed=77)
        assert result.timeout_removals > 10 * max(deterministic.timeout_removals, 1)

    def test_protocol_ordering_preserved_in_simulation(self, params):
        results = {
            protocol: run_sim(protocol, params, sessions=300, seed=99)
            for protocol in Protocol
        }
        inconsistency = {p: r.inconsistency_ratio for p, r in results.items()}
        # The paper's grouping at the default point (Fig. 4a at 1800s):
        assert inconsistency[Protocol.SS_ER] < inconsistency[Protocol.SS]
        assert inconsistency[Protocol.SS_RTR] < inconsistency[Protocol.SS_ER]
        assert inconsistency[Protocol.HS] < inconsistency[Protocol.SS_ER]


class TestReplications:
    def test_replication_metrics_collected(self, params):
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=params, sessions=30, seed=1
        )
        results = simulate_replications(config, replications=4)
        assert results.count("inconsistency_ratio") == 4
        assert results.count("normalized_message_rate") == 4

    def test_replications_are_independent(self, params):
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=params, sessions=30, seed=1
        )
        results = simulate_replications(config, replications=4)
        samples = results.samples("inconsistency_ratio")
        assert len(set(samples)) == 4

    def test_invalid_replication_count(self, params):
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=params, sessions=10, seed=1
        )
        with pytest.raises(ValueError):
            simulate_replications(config, replications=0)

    def test_confidence_interval_brackets_model_most_of_the_time(self, params):
        # A loose statistical check on one protocol: the model value
        # should be near the replicated CI (deterministic timers bias
        # the simulation slightly, so allow 2x the half-width).
        config = SingleHopSimConfig(
            protocol=Protocol.SS_RTR, params=params, sessions=150, seed=31
        )
        results = simulate_replications(config, replications=5)
        interval = results.interval("inconsistency_ratio")
        model = SingleHopModel(Protocol.SS_RTR, params).solve()
        distance = abs(interval.mean - model.inconsistency_ratio)
        assert distance < max(2.0 * interval.half_width, 0.3 * model.inconsistency_ratio)
