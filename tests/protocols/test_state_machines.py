"""Unit tests for the sender/receiver state machines over ideal channels.

These tests wire the sender and receiver through hand-made transports
(synchronous or scripted) so each protocol mechanism can be exercised
deterministically: install/update propagation, soft-state timeout,
explicit removal, ACK-driven retransmission, and notification recovery.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.protocols.messages import Message, MessageKind
from repro.protocols.receiver import SignalingReceiver
from repro.protocols.sender import SignalingSender
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline

PARAMS = SignalingParameters()


class Harness:
    """Sender and receiver joined by scriptable unidirectional pipes."""

    def __init__(self, protocol: Protocol, drop_forward: int = 0) -> None:
        self.env = Environment()
        self.protocol = protocol
        streams = RandomStreams(1)
        self.forward_log: list[Message] = []
        self.reverse_log: list[Message] = []
        self._drop_forward = drop_forward

        def timer(mean: float, key: str) -> Timer:
            return Timer(mean, TimerDiscipline.DETERMINISTIC, streams.stream(key))

        delay = PARAMS.delay

        def forward(message: Message) -> None:
            self.forward_log.append(message)
            if self._drop_forward > 0:
                self._drop_forward -= 1
                return
            event = self.env.timeout(delay)
            event.callbacks.append(lambda _e: self.receiver.on_message(message))

        def reverse(message: Message) -> None:
            self.reverse_log.append(message)
            event = self.env.timeout(delay)
            event.callbacks.append(lambda _e: self.sender.on_message(message))

        self.sender = SignalingSender(
            self.env,
            protocol,
            PARAMS,
            refresh_timer=timer(PARAMS.refresh_interval, "refresh"),
            retransmission_timer=timer(PARAMS.retransmission_interval, "retx"),
            transmit=forward,
        )
        self.receiver = SignalingReceiver(
            self.env,
            protocol,
            timeout_timer=timer(PARAMS.timeout_interval, "timeout"),
            transmit=reverse,
        )

    def forward_kinds(self) -> list[MessageKind]:
        return [m.kind for m in self.forward_log]

    def reverse_kinds(self) -> list[MessageKind]:
        return [m.kind for m in self.reverse_log]


class TestInstallAndUpdate:
    def test_install_reaches_receiver_after_delay(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        assert harness.receiver.value is None
        harness.env.run(until=PARAMS.delay + 1e-9)
        assert harness.receiver.value == harness.sender.value == 1

    def test_update_bumps_version_and_propagates(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.sender.update()
        assert harness.sender.value == 2
        harness.env.run(until=1.0 + PARAMS.delay + 1e-9)
        assert harness.receiver.value == 2

    def test_update_without_state_rejected(self):
        harness = Harness(Protocol.SS)
        with pytest.raises(RuntimeError):
            harness.sender.update()

    def test_refreshes_flow_periodically(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=3 * PARAMS.refresh_interval + 1.0)
        refreshes = [m for m in harness.forward_log if m.kind is MessageKind.REFRESH]
        assert len(refreshes) == 3

    def test_hs_sends_no_refreshes(self):
        harness = Harness(Protocol.HS)
        harness.sender.install()
        harness.env.run(until=10 * PARAMS.refresh_interval)
        assert MessageKind.REFRESH not in harness.forward_kinds()

    def test_stale_state_message_ignored(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.receiver.on_message(Message(MessageKind.REFRESH, version=0, value=99))
        assert harness.receiver.value == 1


class TestSoftStateTimeout:
    def test_receiver_state_expires_without_refreshes(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.sender.remove()
        harness.env.run(until=1.0 + PARAMS.timeout_interval + 1e-6)
        assert harness.receiver.value is None
        assert harness.receiver.timeout_removals == 1

    def test_refreshes_keep_state_alive(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=10 * PARAMS.timeout_interval)
        assert harness.receiver.value is not None
        assert harness.receiver.timeout_removals == 0

    def test_hs_receiver_never_times_out(self):
        harness = Harness(Protocol.HS)
        harness.sender.install()
        harness.env.run(until=1.0)
        # Silence the sender entirely; HS state must persist.
        harness.sender.remove()  # HS sends explicit removal...
        harness2 = Harness(Protocol.HS)
        harness2.sender.install()
        harness2.env.run(until=100 * PARAMS.timeout_interval)
        assert harness2.receiver.value is not None

    def test_ss_rt_timeout_sends_notify_and_sender_recovers(self):
        harness = Harness(Protocol.SS_RT, drop_forward=100_000)
        harness.sender.install()
        # All forward messages dropped: the receiver never installs, so
        # no timeout fires (nothing to expire) — instead check NOTIFY on
        # a receiver that had state and lost it.
        harness2 = Harness(Protocol.SS_RT)
        harness2.sender.install()
        harness2.env.run(until=1.0)
        harness2.receiver._timeout_proc.interrupt("test")  # silence timer
        harness2.receiver._timeout_proc = None
        # Simulate a timeout removal directly:
        harness2.receiver.value = None
        harness2.receiver._on_value_change()
        harness2.receiver._transmit(Message(MessageKind.NOTIFY, harness2.receiver.version))
        before = harness2.forward_kinds().count(MessageKind.TRIGGER)
        harness2.env.run(until=1.0 + PARAMS.delay + 1e-6)
        after = harness2.forward_kinds().count(MessageKind.TRIGGER)
        assert after == before + 1  # sender re-triggered


class TestExplicitRemoval:
    def test_ss_er_removal_message_clears_receiver(self):
        harness = Harness(Protocol.SS_ER)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.sender.remove()
        harness.env.run(until=1.0 + PARAMS.delay + 1e-9)
        assert harness.receiver.value is None
        assert MessageKind.REMOVAL in harness.forward_kinds()
        assert harness.receiver.timeout_removals == 0

    def test_ss_removal_sends_no_message(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.sender.remove()
        harness.env.run(until=2.0)
        assert MessageKind.REMOVAL not in harness.forward_kinds()

    def test_removal_without_state_rejected(self):
        harness = Harness(Protocol.SS)
        with pytest.raises(RuntimeError):
            harness.sender.remove()

    def test_refreshes_stop_after_removal(self):
        harness = Harness(Protocol.SS)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.sender.remove()
        sent_before = len(harness.forward_log)
        harness.env.run(until=1.0 + 5 * PARAMS.refresh_interval)
        assert len(harness.forward_log) == sent_before

    def test_reliable_removal_retransmits_until_acked(self):
        harness = Harness(Protocol.SS_RTR, drop_forward=0)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness._drop_forward = 2  # lose the removal and its 1st retx
        harness.sender.remove()
        harness.env.run(until=1.0 + 3 * PARAMS.retransmission_interval + 3 * PARAMS.delay)
        removals = [m for m in harness.forward_log if m.kind is MessageKind.REMOVAL]
        assert len(removals) == 3
        assert removals[-1].retransmission
        assert harness.receiver.value is None
        assert MessageKind.REMOVAL_ACK in harness.reverse_kinds()

    def test_best_effort_removal_not_retransmitted(self):
        harness = Harness(Protocol.SS_ER)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness._drop_forward = 1  # lose the removal message
        harness.sender.remove()
        harness.env.run(until=1.0 + PARAMS.timeout_interval + 1e-6)
        removals = [m for m in harness.forward_log if m.kind is MessageKind.REMOVAL]
        assert len(removals) == 1
        # The state-timeout eventually cleans up instead.
        assert harness.receiver.value is None
        assert harness.receiver.timeout_removals == 1


class TestReliableTriggers:
    def test_trigger_acked_no_retransmission(self):
        harness = Harness(Protocol.SS_RT)
        harness.sender.install()
        harness.env.run(until=5.0)
        triggers = [m for m in harness.forward_log if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 1
        assert harness.reverse_kinds().count(MessageKind.ACK) == 1

    def test_lost_trigger_retransmitted(self):
        harness = Harness(Protocol.SS_RT, drop_forward=1)
        harness.sender.install()
        harness.env.run(until=PARAMS.retransmission_interval + 2 * PARAMS.delay + 1e-6)
        triggers = [m for m in harness.forward_log if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 2
        assert triggers[1].retransmission
        assert harness.receiver.value == 1

    def test_ss_never_retransmits(self):
        harness = Harness(Protocol.SS, drop_forward=1)
        harness.sender.install()
        harness.env.run(until=PARAMS.refresh_interval - 1e-6)
        triggers = [m for m in harness.forward_log if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 1  # recovery only via the next refresh

    def test_update_supersedes_pending_retransmission(self):
        harness = Harness(Protocol.SS_RT, drop_forward=1)
        harness.sender.install()
        harness.env.run(until=0.01)
        harness.sender.update()  # version 2 before version 1 was acked
        harness.env.run(until=2.0)
        # Version 2 must be installed; version-1 retransmissions stop.
        assert harness.receiver.value == 2
        late_v1 = [
            m
            for m in harness.forward_log
            if m.kind is MessageKind.TRIGGER and m.version == 1 and m.retransmission
        ]
        assert not late_v1

    def test_duplicate_trigger_acked_again(self):
        harness = Harness(Protocol.SS_RT)
        harness.sender.install()
        harness.env.run(until=1.0)
        # Deliver a duplicate of the same version (as a lost-ACK retx would).
        harness.receiver.on_message(Message(MessageKind.TRIGGER, version=1, value=1))
        assert harness.reverse_kinds().count(MessageKind.ACK) == 2


class TestFalseRemovalRecovery:
    def test_hs_false_signal_notifies_and_sender_reinstalls(self):
        harness = Harness(Protocol.HS)
        harness.sender.install()
        harness.env.run(until=1.0)
        harness.receiver.false_remove()
        assert harness.receiver.value is None
        assert MessageKind.NOTIFY in harness.reverse_kinds()
        harness.env.run(until=1.0 + 2 * PARAMS.delay + 1e-6)
        assert harness.receiver.value == harness.sender.value

    def test_false_remove_when_empty_is_noop(self):
        harness = Harness(Protocol.HS)
        harness.receiver.false_remove()
        assert harness.receiver.false_signal_removals == 0
        assert harness.reverse_log == []

    def test_wait_empty_fires_immediately_when_empty(self):
        harness = Harness(Protocol.SS)
        event = harness.receiver.wait_empty()
        assert event.triggered

    def test_wait_empty_fires_on_removal(self):
        harness = Harness(Protocol.SS_ER)
        harness.sender.install()
        harness.env.run(until=1.0)
        event = harness.receiver.wait_empty()
        assert not event.triggered
        harness.sender.remove()
        harness.env.run(until=1.0 + PARAMS.delay + 1e-9)
        assert event.processed
