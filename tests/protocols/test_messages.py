"""Tests for the signaling message vocabulary."""

from __future__ import annotations

import pytest

from repro.protocols.messages import Message, MessageKind


class TestMessage:
    def test_trigger_carries_state(self):
        message = Message(MessageKind.TRIGGER, version=1, value=1)
        assert message.carries_state

    def test_refresh_carries_state(self):
        assert Message(MessageKind.REFRESH, version=2, value=2).carries_state

    @pytest.mark.parametrize(
        "kind",
        [MessageKind.REMOVAL, MessageKind.ACK, MessageKind.REMOVAL_ACK, MessageKind.NOTIFY],
    )
    def test_control_messages_do_not_carry_state(self, kind):
        assert not Message(kind, version=1).carries_state

    @pytest.mark.parametrize("kind", [MessageKind.TRIGGER, MessageKind.REFRESH])
    def test_state_messages_require_value(self, kind):
        with pytest.raises(ValueError):
            Message(kind, version=1, value=None)

    def test_negative_version_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageKind.ACK, version=-1)

    def test_frozen(self):
        message = Message(MessageKind.ACK, version=1)
        with pytest.raises(AttributeError):
            message.version = 2  # type: ignore[misc]

    def test_retransmission_flag_defaults_false(self):
        assert not Message(MessageKind.ACK, version=1).retransmission
        assert Message(MessageKind.ACK, version=1, retransmission=True).retransmission
