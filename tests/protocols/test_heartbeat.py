"""Tests for the heartbeat failure-detector substrate."""

from __future__ import annotations

import pytest

from repro.protocols.heartbeat import (
    HeartbeatMonitor,
    build_heartbeat_pair,
    false_positive_rate,
)
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline


def make_pair(loss=0.0, interval=1.0, miss_threshold=2, seed=1, detections=None):
    env = Environment()
    streams = RandomStreams(seed)
    detections = detections if detections is not None else []
    emitter, monitor = build_heartbeat_pair(
        env,
        loss_rate=loss,
        delay=0.01,
        interval=interval,
        miss_threshold=miss_threshold,
        interval_timer=Timer(interval, TimerDiscipline.DETERMINISTIC, streams.stream("hb")),
        rng=streams.stream("chan"),
        on_failure=lambda: detections.append(env.now),
    )
    return env, emitter, monitor, detections


class TestFalsePositiveFormula:
    def test_formula(self):
        assert false_positive_rate(0.1, 2.0, 3) == pytest.approx((0.1**3) / 2.0)

    def test_zero_loss_never_false(self):
        assert false_positive_rate(0.0, 1.0, 2) == 0.0

    @pytest.mark.parametrize(
        "loss,interval,threshold",
        [(-0.1, 1.0, 1), (1.0, 1.0, 1), (0.1, 0.0, 1), (0.1, 1.0, 0)],
    )
    def test_validation(self, loss, interval, threshold):
        with pytest.raises(ValueError):
            false_positive_rate(loss, interval, threshold)


class TestDetection:
    def test_healthy_emitter_no_alarms(self):
        env, _, monitor, detections = make_pair(loss=0.0)
        env.run(until=1000.0)
        assert detections == []
        assert monitor.detections == 0

    def test_crash_detected_within_deadline(self):
        env, emitter, monitor, detections = make_pair(loss=0.0, miss_threshold=2)
        env.run(until=10.0)
        emitter.crash()
        env.run(until=10.0 + 2.5 * 1.0 + 1.0)
        assert len(detections) == 1
        # Detection within the deadline window after the last heartbeat.
        assert detections[0] <= 10.0 + 2.5 + 1.0

    def test_stop_silences_monitor(self):
        env, emitter, monitor, detections = make_pair(loss=0.0)
        env.run(until=5.0)
        emitter.crash()
        monitor.stop()
        env.run(until=100.0)
        assert detections == []

    def test_measured_false_alarm_rate_matches_prediction(self):
        env, _, monitor, _ = make_pair(loss=0.08, miss_threshold=2, seed=12)
        horizon = 300_000.0
        env.run(until=horizon)
        measured = monitor.detections / horizon
        predicted = false_positive_rate(0.08, 1.0, 2)
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_higher_threshold_fewer_false_alarms(self):
        rates = {}
        for threshold in (1, 2):
            env, _, monitor, _ = make_pair(loss=0.1, miss_threshold=threshold, seed=9)
            env.run(until=100_000.0)
            rates[threshold] = monitor.detections
        assert rates[2] < rates[1]

    def test_invalid_monitor_parameters(self):
        env = Environment()
        with pytest.raises(ValueError):
            HeartbeatMonitor(env, interval=0.0, miss_threshold=1, on_failure=lambda: None)
        with pytest.raises(ValueError):
            HeartbeatMonitor(env, interval=1.0, miss_threshold=0, on_failure=lambda: None)

    def test_emitter_counts_heartbeats(self):
        env, emitter, _, _ = make_pair(loss=0.0)
        env.run(until=10.5)
        assert emitter.heartbeats_sent == 10
