"""The docs contract: doctests, generated CLI reference, link integrity.

Three promises the ``docs`` CI job also enforces:

* the public-surface docstring examples (``repro.api``,
  ``repro.validation``, the spec dataclasses) actually run;
* the committed ``docs/cli.md`` matches a fresh rendering of the
  argparse tree (regenerate with ``python tools/generate_cli_docs.py``);
* the layer-map block in ``docs/architecture.md`` matches the layer
  manifest (regenerate with ``python tools/generate_layer_docs.py``);
* every relative link in ``docs/*.md`` and ``README.md`` resolves.
"""

from __future__ import annotations

import doctest
import os
import pathlib
import subprocess
import sys

import pytest

import repro.api
import repro.experiments.spec
import repro.validation
from repro.cli import generate_cli_markdown

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
TOOLS = REPO_ROOT / "tools"


@pytest.mark.parametrize(
    "module",
    [repro.api, repro.experiments.spec, repro.validation],
    ids=lambda module: module.__name__,
)
def test_public_surface_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
    assert results.failed == 0


def test_generated_cli_reference_is_committed_and_in_sync():
    committed = (DOCS / "cli.md").read_text()
    assert committed == generate_cli_markdown(), (
        "docs/cli.md is out of sync with the argparse tree; regenerate "
        "with `python tools/generate_cli_docs.py`"
    )


def test_cli_reference_lists_every_scenario():
    text = (DOCS / "cli.md").read_text()
    from repro.experiments import experiment_ids

    for scenario_id in experiment_ids():
        assert scenario_id in text


def test_generate_docs_flag_prints_reference():
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "--generate-docs"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert result.returncode == 0
    assert result.stdout == generate_cli_markdown()


def _run_check_tool():
    return subprocess.run(
        [sys.executable, str(TOOLS / "generate_cli_docs.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_check_tool_passes_when_in_sync():
    result = _run_check_tool()
    assert result.returncode == 0, result.stderr


def test_check_tool_detects_drift():
    doc = DOCS / "cli.md"
    original = doc.read_text()
    try:
        doc.write_text(original + "\nstray drift line\n")
        result = _run_check_tool()
        assert result.returncode == 1
        assert "out of sync" in result.stderr
        assert "stray drift line" in result.stderr
    finally:
        doc.write_text(original)


def test_docs_links_resolve():
    sys.path.insert(0, str(TOOLS))
    try:
        import check_links
    finally:
        sys.path.remove(str(TOOLS))
    problems = []
    for document in [*sorted(DOCS.glob("*.md")), REPO_ROOT / "README.md"]:
        problems.extend(check_links.check_file(document))
    assert not problems, "\n".join(problems)


def test_docs_exist_and_link_to_each_other():
    names = (
        "architecture.md",
        "authoring.md",
        "validation.md",
        "cli.md",
        "linting.md",
    )
    for name in names:
        assert (DOCS / name).exists(), f"docs/{name} missing"
    readme = (REPO_ROOT / "README.md").read_text()
    for name in names:
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


def _run_layer_docs_check():
    return subprocess.run(
        [sys.executable, str(TOOLS / "generate_layer_docs.py"), "--check"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_architecture_layer_map_is_in_sync():
    result = _run_layer_docs_check()
    assert result.returncode == 0, result.stderr


def test_layer_docs_check_detects_drift():
    doc = DOCS / "architecture.md"
    original = doc.read_text()
    try:
        doc.write_text(
            original.replace("<!-- layer-map:begin -->", "<!-- layer-map:begin -->\nstray drift line")
        )
        result = _run_layer_docs_check()
        assert result.returncode == 1
        assert "stray drift line" in result.stderr
    finally:
        doc.write_text(original)


def test_linting_doc_names_every_shipped_rule():
    """docs/linting.md's catalogue stays in sync with default_rules()."""
    sys.path.insert(0, str(REPO_ROOT))
    try:
        from tools.reprolint.rules import default_rules
    finally:
        sys.path.remove(str(REPO_ROOT))
    text = (DOCS / "linting.md").read_text()
    for rule in default_rules():
        assert f"`{rule.code}`" in text, (
            f"docs/linting.md does not document {rule.code}; keep the "
            "rule catalogue in sync with default_rules()"
        )


def test_list_scenarios_docstring_matches_registry():
    """The api.list_scenarios docstring names every registered id."""
    from repro.experiments import experiment_ids

    docstring = repro.api.list_scenarios.__doc__
    for scenario_id in experiment_ids():
        assert scenario_id in docstring, (
            "repro.api.list_scenarios docstring does not mention "
            f"{scenario_id!r}; keep docs, registry and CLI consistent"
        )
