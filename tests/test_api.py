"""Tests for the public library facade (repro.api)."""

from __future__ import annotations

import pytest

import repro
import repro.api as api
from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.experiments.spec import ScenarioError


class TestListScenarios:
    def test_returns_specs_sorted_by_id(self):
        specs = api.list_scenarios()
        ids = [spec.scenario_id for spec in specs]
        assert ids == sorted(ids)
        assert "fig4" in ids and "table1" in ids

    def test_lazy_module_attribute(self):
        assert repro.api is api
        with pytest.raises(AttributeError):
            repro.nonexistent  # noqa: B018


class TestSolveFacades:
    def test_solve_singlehop_matches_reference_model(self):
        solution = api.solve_singlehop(Protocol.SS_ER)
        reference = SingleHopModel(Protocol.SS_ER, kazaa_defaults()).solve()
        assert solution.inconsistency_ratio == reference.inconsistency_ratio

    def test_solve_singlehop_accepts_names_and_overrides(self):
        lossy = api.solve_singlehop("ss+er", loss_rate=0.1)
        clean = api.solve_singlehop("ss+er")
        assert lossy.inconsistency_ratio > clean.inconsistency_ratio

    def test_solve_multihop_overrides(self):
        short = api.solve_multihop("hs", hops=2)
        long = api.solve_multihop("hs", hops=20)
        assert long.inconsistency_ratio > short.inconsistency_ratio

    def test_unknown_override_rejected(self):
        with pytest.raises(ScenarioError, match="unknown parameter"):
            api.solve_singlehop("ss", bogus=1.0)


class TestSweep:
    def test_sweep_matches_point_solves(self):
        series = api.sweep("loss_rate", (0.01, 0.05), protocols="ss")
        (ss,) = series
        assert ss.label == "SS"
        expected = tuple(
            api.solve_singlehop("ss", loss_rate=p).inconsistency_ratio
            for p in (0.01, 0.05)
        )
        assert ss.y == expected

    def test_multihop_sweep(self):
        series = api.sweep("hops", (2.0, 5.0), multihop=True, metric="message_rate")
        assert [s.label for s in series] == [p.value for p in Protocol.multihop_family()]
        base = reservation_defaults()
        assert series[0].y[0] == api.solve_multihop(
            "ss", base.replace(hops=2)
        ).message_rate

    def test_callable_metric(self):
        series = api.sweep(
            "loss_rate",
            (0.01,),
            protocols="hs",
            metric=lambda solution: solution.normalized_message_rate,
        )
        assert len(series[0].y) == 1

    def test_invalid_param_rejected(self):
        with pytest.raises(ScenarioError, match="unknown parameter"):
            api.sweep("bogus", (1.0,))


class TestRunScenarioExport:
    def test_run_scenario_reexported(self):
        result = api.run_scenario("table1", "full")
        assert result.experiment_id == "table1"
        assert result.provenance.scenario_id == "table1"
