"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)

try:
    from hypothesis import settings as _hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pass
else:
    # One fixed fuzzing profile everywhere: no wall-clock deadline
    # (CTMC solves vary too much across CI runners for per-example
    # deadlines) and derandomized generation, so a CI failure replays
    # locally with the same examples.
    _hypothesis_settings.register_profile(
        "repro", deadline=None, derandomize=True
    )
    _hypothesis_settings.load_profile("repro")


@pytest.fixture
def params() -> SignalingParameters:
    """The paper's single-hop (Kazaa) defaults."""
    return kazaa_defaults()


@pytest.fixture
def multihop_params() -> MultiHopParameters:
    """The paper's multi-hop (reservation) defaults, shrunk to 5 hops
    so chain solves and simulations stay fast in unit tests."""
    return reservation_defaults().replace(hops=5)


@pytest.fixture
def lossless_params() -> SignalingParameters:
    """A loss-free channel: deterministic behavior for unit tests."""
    return kazaa_defaults().replace(loss_rate=0.0)
