"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)


@pytest.fixture
def params() -> SignalingParameters:
    """The paper's single-hop (Kazaa) defaults."""
    return kazaa_defaults()


@pytest.fixture
def multihop_params() -> MultiHopParameters:
    """The paper's multi-hop (reservation) defaults, shrunk to 5 hops
    so chain solves and simulations stay fast in unit tests."""
    return reservation_defaults().replace(hops=5)


@pytest.fixture
def lossless_params() -> SignalingParameters:
    """A loss-free channel: deterministic behavior for unit tests."""
    return kazaa_defaults().replace(loss_rate=0.0)
