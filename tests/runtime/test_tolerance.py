"""Tests for the fault-tolerance knobs and the failure report.

The chaos suite (``test_chaos.py``, ``-m chaos``) exercises real
process-level faults; these tests cover the in-process surface — knob
resolution precedence, context managers, retry accounting, and the
report — and run in tier-1.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    FailureReport,
    configure_tolerance,
    effective_max_retries,
    effective_task_timeout,
    failure_report,
    parallel_map,
    using_tolerance,
)
from repro.runtime import executor as executor_module


@pytest.fixture(autouse=True)
def clean_tolerance(monkeypatch):
    monkeypatch.setattr(executor_module, "_BACKOFF_BASE", 0.0)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    configure_tolerance(None, None)
    failure_report().reset()
    yield
    configure_tolerance(None, None)
    failure_report().reset()


class TestTaskTimeoutResolution:
    def test_defaults_to_no_timeout(self):
        assert effective_task_timeout() is None

    def test_explicit_argument_wins(self):
        configure_tolerance(task_timeout=30.0)
        assert effective_task_timeout(5.0) == 5.0

    def test_configured_default_applies(self):
        configure_tolerance(task_timeout=30.0)
        assert effective_task_timeout() == 30.0

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        assert effective_task_timeout() == 12.5

    def test_zero_disables_even_against_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "12.5")
        assert effective_task_timeout(0.0) is None
        configure_tolerance(task_timeout=0.0)
        assert effective_task_timeout() is None

    def test_infinite_timeout_means_none(self):
        assert effective_task_timeout(float("inf")) is None

    @pytest.mark.parametrize("bad", [-1.0, float("nan")])
    def test_invalid_timeout_rejected(self, bad):
        with pytest.raises(ValueError):
            effective_task_timeout(bad)

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_TASK_TIMEOUT"):
            effective_task_timeout()


class TestMaxRetriesResolution:
    def test_built_in_default(self):
        assert effective_max_retries() == 2

    def test_explicit_argument_wins(self):
        configure_tolerance(max_retries=5)
        assert effective_max_retries(0) == 0

    def test_configured_default_applies(self):
        configure_tolerance(max_retries=5)
        assert effective_max_retries() == 5

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        assert effective_max_retries() == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            effective_max_retries(-1)

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "lots")
        with pytest.raises(ValueError, match="REPRO_MAX_RETRIES"):
            effective_max_retries()


class TestConfigureSentinel:
    def test_setting_one_knob_leaves_the_other(self):
        configure_tolerance(task_timeout=30.0, max_retries=5)
        configure_tolerance(max_retries=1)
        assert effective_task_timeout() == 30.0
        assert effective_max_retries() == 1

    def test_none_resets_to_environment(self, monkeypatch):
        configure_tolerance(task_timeout=30.0)
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.0")
        configure_tolerance(task_timeout=None)
        assert effective_task_timeout() == 7.0

    def test_using_tolerance_restores(self):
        configure_tolerance(task_timeout=30.0, max_retries=5)
        with using_tolerance(task_timeout=1.0, max_retries=0):
            assert effective_task_timeout() == 1.0
            assert effective_max_retries() == 0
        assert effective_task_timeout() == 30.0
        assert effective_max_retries() == 5

    def test_using_tolerance_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with using_tolerance(task_timeout=1.0):
                raise RuntimeError("boom")
        assert effective_task_timeout() is None


class _FlakyTask:
    """Raises on the first ``failures`` calls per item, then computes."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls: dict[int, int] = {}

    def __call__(self, x: int) -> int:
        self.calls[x] = self.calls.get(x, 0) + 1
        if self.calls[x] <= self.failures:
            raise RuntimeError(f"transient fault on {x}")
        return x * x


class TestSerialRetry:
    def test_transient_failures_absorbed(self):
        task = _FlakyTask(failures=2)
        assert parallel_map(task, [1, 2, 3], jobs=1, max_retries=2) == [1, 4, 9]
        assert failure_report().retries == 6

    def test_budget_exhaustion_raises_original_error(self):
        task = _FlakyTask(failures=3)
        with pytest.raises(RuntimeError, match="transient fault on 1"):
            parallel_map(task, [1], jobs=1, max_retries=2)

    def test_zero_retries_fails_fast(self):
        task = _FlakyTask(failures=1)
        with pytest.raises(RuntimeError):
            parallel_map(task, [1], jobs=1, max_retries=0)
        assert task.calls == {1: 1}
        assert failure_report().retries == 0


class TestFailureReport:
    def test_total_sums_all_counters(self):
        report = FailureReport(
            timeouts=1, retries=2, worker_crashes=3, degradations=4, solver_fallbacks=5
        )
        assert report.total == 15

    def test_reset_zeroes_everything(self):
        report = FailureReport(timeouts=1, retries=2)
        report.reset()
        assert report.total == 0

    def test_summary_mentions_every_counter(self):
        text = FailureReport().summary()
        for counter in (
            "timeouts",
            "retries",
            "worker_crashes",
            "degradations",
            "solver_fallbacks",
        ):
            assert f"{counter}=0" in text

    def test_process_wide_report_is_shared(self):
        failure_report().retries += 1
        assert failure_report().retries == 1
