"""Tests for the process-pool sweep executor."""

from __future__ import annotations

import math

import pytest

from repro.runtime import configure, effective_jobs, parallel_map, using_jobs
from repro.runtime.executor import available_cpus


@pytest.fixture(autouse=True)
def reset_default_jobs():
    configure(None)
    yield
    configure(None)


def _square(x: int) -> int:
    return x * x


class TestJobsResolution:
    def test_defaults_to_serial(self):
        assert effective_jobs() == 1

    def test_explicit_argument_wins(self):
        configure(3)
        assert effective_jobs(2) == 2

    def test_configure_sets_default(self):
        configure(4)
        assert effective_jobs() == 4
        configure(None)
        assert effective_jobs() == 1

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert effective_jobs() == 5

    def test_invalid_environment_variable_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            effective_jobs()

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ValueError):
            configure(0)
        with pytest.raises(ValueError):
            effective_jobs(-1)

    def test_using_jobs_restores_previous_default(self):
        configure(2)
        with using_jobs(6):
            assert effective_jobs() == 6
        assert effective_jobs() == 2

    def test_using_jobs_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with using_jobs(6):
                raise RuntimeError("boom")
        assert effective_jobs() == 1

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


class TestParallelMap:
    def test_serial_matches_builtin_map(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]

    def test_preserves_input_order_across_workers(self):
        items = list(range(40))
        assert parallel_map(_square, items, jobs=4) == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(_square, []) == []
        assert parallel_map(_square, [], jobs=4) == []

    def test_accepts_any_iterable(self):
        assert parallel_map(_square, iter(range(5))) == [0, 1, 4, 9, 16]

    def test_parallel_equals_serial(self):
        items = list(range(17))
        assert parallel_map(math.factorial, items, jobs=2) == parallel_map(
            math.factorial, items, jobs=1
        )

    def test_configured_default_applies(self):
        configure(2)
        items = list(range(6))
        assert parallel_map(_square, items) == [x * x for x in items]
