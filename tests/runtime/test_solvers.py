"""Tests for the cache-aware batch solvers and experiment fan-out."""

from __future__ import annotations

import logging

import pytest

from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.runtime import (
    failure_report,
    global_cache,
    run_experiments,
    solve_multihop_batch,
    solve_protocol_suite,
    solve_singlehop_batch,
)
from repro.runtime.solvers import solve_chain_stationary, solve_singlehop_point


@pytest.fixture(autouse=True)
def fresh_cache():
    global_cache().clear()
    yield
    global_cache().clear()


class TestSingleHopBatch:
    def test_matches_direct_solve(self):
        params = kazaa_defaults()
        tasks = [(protocol, params) for protocol in Protocol]
        solutions = solve_singlehop_batch(tasks)
        for (protocol, _), solution in zip(tasks, solutions):
            direct = SingleHopModel(protocol, params).solve()
            assert solution.protocol is protocol
            assert solution.inconsistency_ratio == direct.inconsistency_ratio
            assert solution.normalized_message_rate == direct.normalized_message_rate

    def test_duplicate_tasks_solved_once(self):
        params = kazaa_defaults()
        task = (Protocol.SS, params)
        solutions = solve_singlehop_batch([task, task, task])
        assert solutions[0] is solutions[1] is solutions[2]
        assert len(global_cache()) == 1

    def test_repeat_batch_served_from_cache(self):
        params = kazaa_defaults()
        tasks = [(Protocol.SS, params), (Protocol.HS, params)]
        first = solve_singlehop_batch(tasks)
        before = global_cache().stats()["misses"]
        second = solve_singlehop_batch(tasks)
        assert global_cache().stats()["misses"] == before
        assert [s.inconsistency_ratio for s in first] == [
            s.inconsistency_ratio for s in second
        ]

    def test_content_equal_parameters_share_cache_entries(self):
        solve_singlehop_batch([(Protocol.SS, kazaa_defaults())])
        solve_singlehop_batch([(Protocol.SS, kazaa_defaults())])
        assert len(global_cache()) == 1

    def test_parallel_matches_serial(self):
        base = kazaa_defaults()
        tasks = [
            (protocol, base.replace(delay=delay))
            for protocol in (Protocol.SS, Protocol.HS)
            for delay in (0.01, 0.03, 0.05)
        ]
        serial = solve_singlehop_batch(tasks, jobs=1)
        global_cache().clear()
        parallel = solve_singlehop_batch(tasks, jobs=2)
        assert [s.inconsistency_ratio for s in serial] == [
            s.inconsistency_ratio for s in parallel
        ]
        assert [s.message_breakdown for s in serial] == [
            s.message_breakdown for s in parallel
        ]

    def test_point_solver_memoizes(self):
        task = (Protocol.SS, kazaa_defaults())
        first = solve_singlehop_point(task)
        second = solve_singlehop_point(task)
        assert first is second


class TestMultiHopBatch:
    def test_matches_direct_solve(self):
        params = reservation_defaults()
        tasks = [(protocol, params) for protocol in Protocol.multihop_family()]
        solutions = solve_multihop_batch(tasks)
        assert [s.protocol for s in solutions] == list(Protocol.multihop_family())
        assert all(0.0 <= s.inconsistency_ratio <= 1.0 for s in solutions)


class TestHeterogeneousBatch:
    def test_matches_direct_solve_and_keys_on_hop_vector(self):
        from repro.core.multihop.heterogeneous import (
            HeterogeneousHop,
            HeterogeneousMultiHopModel,
            hops_from_parameters,
        )
        from repro.runtime import solve_heterogeneous_batch

        params = reservation_defaults().replace(hops=5)
        uniform = hops_from_parameters(params)
        lossy = (HeterogeneousHop(0.2, 0.05),) + uniform[1:]
        tasks = [
            (Protocol.SS, params, uniform),
            (Protocol.SS, params, lossy),
            (Protocol.SS, params, uniform),  # duplicate of the first
        ]
        solutions = solve_heterogeneous_batch(tasks)
        direct = HeterogeneousMultiHopModel(Protocol.SS, params, uniform).solve()
        assert solutions[0].inconsistency_ratio == direct.inconsistency_ratio
        # Different hop vectors must not collide in the cache...
        assert solutions[1].inconsistency_ratio != solutions[0].inconsistency_ratio
        # ...while identical ones dedupe to a single solve.
        assert solutions[2] is solutions[0]
        assert len(global_cache()) == 2


class TestProtocolSuite:
    def test_covers_every_protocol(self):
        suite = solve_protocol_suite(kazaa_defaults())
        assert set(suite) == set(Protocol)

    def test_is_picklable(self):
        import pickle

        suite = solve_protocol_suite(kazaa_defaults())
        clone = pickle.loads(pickle.dumps(suite))
        assert set(clone) == set(Protocol)


class TestRunExperiments:
    def test_serial_fanout_matches_run_experiment(self):
        from repro.experiments import run_experiment

        direct = run_experiment("fig17", fast=True)
        (fanned,) = run_experiments(["fig17"], fast=True)
        assert fanned.to_text() == direct.to_text()

    def test_parallel_fanout_matches_serial(self):
        serial = run_experiments(["fig17", "table1"], fast=True, jobs=1)
        parallel = run_experiments(["fig17", "table1"], fast=True, jobs=2)
        assert [r.to_text() for r in serial] == [r.to_text() for r in parallel]


class TestTreeBackendRouting:
    def test_cache_key_separates_backends(self):
        from repro.core.multihop import Topology
        from repro.runtime.solvers import _tree_key

        topology = Topology.star(2)
        params = reservation_defaults().replace(hops=topology.num_edges)
        keys = {
            backend: _tree_key((Protocol.SS, params, topology, backend))
            for backend in ("direct", "lumped", "iterative")
        }
        assert len(set(keys.values())) == 3

    def test_auto_shares_cache_entry_with_resolved_backend(self):
        from repro.core.multihop import Topology, select_tree_backend
        from repro.runtime.solvers import _tree_key

        topology = Topology.star(8)  # over the direct cap: resolves lumped
        resolved = select_tree_backend(topology)
        assert resolved == "lumped"
        params = reservation_defaults().replace(hops=topology.num_edges)
        auto_key = _tree_key((Protocol.SS, params, topology))
        explicit_key = _tree_key((Protocol.SS, params, topology, resolved))
        assert auto_key == explicit_key

    def test_batch_routes_mixed_backends_in_input_order(self):
        from repro.core.multihop import LumpedTreeModel, Topology, TreeModel
        from repro.runtime import solve_tree_batch

        params = reservation_defaults()
        small = Topology.star(2)
        wide = Topology.star(8)
        tasks = [
            (Protocol.SS, params.replace(hops=wide.num_edges), wide),
            (Protocol.SS, params.replace(hops=small.num_edges), small),
        ]
        wide_solution, small_solution = solve_tree_batch(tasks)
        direct = TreeModel(Protocol.SS, tasks[1][1], small).solve()
        lumped = LumpedTreeModel(Protocol.SS, tasks[0][1], wide).solve()
        assert small_solution.inconsistency_ratio == pytest.approx(
            direct.inconsistency_ratio, rel=1e-12
        )
        assert wide_solution.inconsistency_ratio == pytest.approx(
            lumped.inconsistency_ratio, rel=1e-12
        )

    def test_invalid_backend_rejected(self):
        from repro.core.multihop import Topology
        from repro.runtime import solve_tree_batch

        topology = Topology.star(2)
        params = reservation_defaults().replace(hops=topology.num_edges)
        with pytest.raises(ValueError, match="tree backend"):
            solve_tree_batch([(Protocol.SS, params, topology, "magic")])


class _FakeChain:
    """Duck-typed stand-in for ContinuousTimeMarkovChain in fallback tests."""

    def __init__(self, solver, failing=("sparse",)):
        self.solver = solver
        self.states = ("a", "b")
        self._failing = failing

    def stationary_distribution(self):
        if self.solver in self._failing:
            raise ValueError(f"{self.solver} factorization is singular")
        return {"a": 0.5, "b": 0.5}

    def with_solver(self, solver):
        return _FakeChain(solver, self._failing)


class TestStationarySolverFallback:
    @pytest.fixture(autouse=True)
    def fresh_report(self):
        failure_report().reset()
        yield
        failure_report().reset()

    def test_sparse_failure_falls_back_to_dense(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.runtime.solvers"):
            result = solve_chain_stationary(_FakeChain("sparse"))
        assert result == {"a": 0.5, "b": 0.5}
        assert failure_report().solver_fallbacks == 1
        assert any("recomputing densely" in record.message for record in caplog.records)

    def test_successful_solve_is_not_counted(self):
        assert solve_chain_stationary(_FakeChain("sparse", failing=())) == {
            "a": 0.5,
            "b": 0.5,
        }
        assert failure_report().solver_fallbacks == 0

    def test_dense_failure_propagates(self):
        with pytest.raises(ValueError, match="dense factorization"):
            solve_chain_stationary(_FakeChain("dense", failing=("dense",)))
        assert failure_report().solver_fallbacks == 0

    def test_sparse_and_dense_failures_rescue_iteratively(self, caplog):
        # Sparse fails, dense also fails: the iterative backend is the
        # last rescue on the chain and still lands the solve.
        with caplog.at_level(logging.WARNING, logger="repro.runtime.solvers"):
            result = solve_chain_stationary(
                _FakeChain("sparse", failing=("sparse", "dense"))
            )
        assert result == {"a": 0.5, "b": 0.5}
        assert failure_report().solver_fallbacks == 1

    def test_fallback_failure_propagates_after_counting(self):
        # Every backend fails: the last rescue's error surfaces and the
        # attempted fallback is still on the record.
        with pytest.raises(ValueError, match="iterative factorization"):
            solve_chain_stationary(
                _FakeChain("sparse", failing=("sparse", "dense", "iterative"))
            )
        assert failure_report().solver_fallbacks == 1

    def test_iterative_chain_rescues_densely_without_self_retry(self):
        # An iterative-configured chain must not retry iteratively; the
        # dense rescue answers.
        result = solve_chain_stationary(
            _FakeChain("iterative", failing=("iterative",))
        )
        assert result == {"a": 0.5, "b": 0.5}
        assert failure_report().solver_fallbacks == 1
