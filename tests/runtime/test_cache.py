"""Tests for the content-keyed solve cache."""

from __future__ import annotations

import pytest

from repro.core.parameters import SignalingParameters, kazaa_defaults
from repro.core.protocols import Protocol
from repro.runtime.cache import SolveCache, cache_key, global_cache


class TestCacheKey:
    def test_equal_parameter_content_maps_to_equal_keys(self):
        a = cache_key("singlehop", Protocol.SS, SignalingParameters())
        b = cache_key("singlehop", Protocol.SS, kazaa_defaults())
        assert a == b

    def test_different_parameters_differ(self):
        base = kazaa_defaults()
        a = cache_key("singlehop", Protocol.SS, base)
        b = cache_key("singlehop", Protocol.SS, base.replace(delay=0.05))
        assert a != b

    def test_protocol_and_kind_distinguish(self):
        params = kazaa_defaults()
        assert cache_key("singlehop", Protocol.SS, params) != cache_key(
            "singlehop", Protocol.HS, params
        )
        assert cache_key("singlehop", Protocol.SS, params) != cache_key(
            "multihop", Protocol.SS, params
        )

    def test_extra_participates(self):
        params = kazaa_defaults()
        assert cache_key("h", Protocol.SS, params, extra=(1,)) != cache_key(
            "h", Protocol.SS, params, extra=(2,)
        )


class TestSolveCache:
    def test_miss_then_hit(self):
        cache = SolveCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), 42)
        assert cache.get(("k",)) == 42
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_contains_and_len(self):
        cache = SolveCache()
        cache.put(("a",), 1)
        assert ("a",) in cache
        assert ("b",) not in cache
        assert len(cache) == 1

    def test_clear_resets_everything(self):
        cache = SolveCache()
        cache.put(("a",), 1)
        cache.get(("a",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_eviction_beyond_maxsize_drops_oldest(self):
        cache = SolveCache(maxsize=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert ("a",) not in cache
        assert cache.get(("c",)) == 3

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            SolveCache(maxsize=0)

    def test_global_cache_is_shared(self):
        assert global_cache() is global_cache()
