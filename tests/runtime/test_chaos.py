"""Chaos suite: the executor under killed, hung, and raising workers.

These tests inject *real* process-level faults — SIGKILL a pool child,
park a task past the progress timeout, raise from inside a task — and
assert the contract from ``docs/robustness.md``: the returned list is
complete, in input order, and bit-identical to an undisturbed serial
run, with every fault event counted in the :class:`FailureReport`.

The fault tasks misbehave only on their *first* attempt, keyed on a
marker file under ``tmp_path``: attempt one writes the marker and
misbehaves, every retry sees the marker and computes normally.  That
makes each test deterministic without cooperation from the scheduler.

Marked ``chaos`` and excluded from tier-1 (``addopts`` in
pyproject.toml): killing and hanging workers is deliberately hostile to
shared runners.  Run with ``pytest -m chaos``.
"""

from __future__ import annotations

import os
import pathlib
import signal
import time

import pytest

from repro.runtime import (
    configure,
    configure_tolerance,
    failure_report,
    parallel_map,
)
from repro.runtime import executor as executor_module
from repro.runtime.executor import process_pool_usable

pytestmark = pytest.mark.chaos

needs_pool = pytest.mark.skipif(
    not process_pool_usable(), reason="platform cannot spawn worker pools"
)


@pytest.fixture(autouse=True)
def chaos_environment(monkeypatch):
    """Fast, isolated fault handling: no backoff, fresh defaults/counters."""
    monkeypatch.setattr(executor_module, "_BACKOFF_BASE", 0.0)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
    configure(None)
    configure_tolerance(None, None)
    failure_report().reset()
    yield
    configure(None)
    configure_tolerance(None, None)
    failure_report().reset()


def _square(x: int) -> int:
    return x * x


# Each task argument is ``(x, marker_path)``; ``marker_path`` is empty
# for well-behaved items.  First attempt on a faulty item writes the
# marker, then misbehaves; retries see the marker and behave.


def _first_attempt(marker: str) -> bool:
    if not marker:
        return False
    path = pathlib.Path(marker)
    if path.exists():
        return False
    path.write_text("attempted")
    return True


def _kill_once_then_square(arg: tuple[int, str]) -> int:
    x, marker = arg
    if _first_attempt(marker):
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _hang_once_then_square(arg: tuple[int, str]) -> int:
    x, marker = arg
    if _first_attempt(marker):
        time.sleep(300.0)
    return x * x


def _raise_once_then_square(arg: tuple[int, str]) -> int:
    x, marker = arg
    if _first_attempt(marker):
        raise RuntimeError(f"injected fault on item {x}")
    return x * x


def _always_raise(arg: tuple[int, str]) -> int:
    raise ValueError(f"permanent fault on item {arg[0]}")


def _args(n: int, faulty: dict[int, pathlib.Path]) -> list[tuple[int, str]]:
    return [(x, str(faulty.get(x, ""))) for x in range(n)]


@needs_pool
class TestKilledWorker:
    def test_sigkill_child_recovers_and_matches_serial(self, tmp_path):
        items = _args(12, {5: tmp_path / "kill-5"})
        chaotic = parallel_map(_kill_once_then_square, items, jobs=3)
        assert chaotic == [x * x for x in range(12)]
        report = failure_report()
        assert report.worker_crashes >= 1
        # The undisturbed serial rerun (marker now present) is bit-identical.
        assert chaotic == parallel_map(_kill_once_then_square, items, jobs=1)

    def test_multiple_kills_within_rebuild_budget(self, tmp_path):
        faulty = {2: tmp_path / "kill-2", 9: tmp_path / "kill-9"}
        items = _args(12, faulty)
        assert parallel_map(_kill_once_then_square, items, jobs=2) == [
            x * x for x in range(12)
        ]
        # Both faults demonstrably fired (markers written by attempt 1);
        # one teardown can absorb both kills, so the counter is >= 1.
        assert all(marker.exists() for marker in faulty.values())
        assert failure_report().worker_crashes >= 1

    def test_crash_charges_retry_budget(self, tmp_path):
        # A task whose worker dies on every attempt must eventually
        # surface the failure instead of rebuilding pools forever.
        marker = tmp_path / "kill-forever"
        items = [(0, ""), (1, str(marker))]
        with pytest.raises(BaseException):  # noqa: B017 - pool death surfaces
            # max_retries=0: the first crash exhausts the budget.
            parallel_map(_always_kill, items, jobs=2, max_retries=0)
        assert failure_report().worker_crashes >= 1


def _always_kill(arg: tuple[int, str]) -> int:
    x, marker = arg
    if marker:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


@needs_pool
class TestHungTask:
    def test_hung_task_times_out_and_recovers(self, tmp_path):
        items = _args(8, {3: tmp_path / "hang-3"})
        chaotic = parallel_map(
            _hang_once_then_square, items, jobs=2, task_timeout=1.0
        )
        assert chaotic == [x * x for x in range(8)]
        assert failure_report().timeouts >= 1

    def test_hung_task_result_matches_serial(self, tmp_path):
        items = _args(6, {0: tmp_path / "hang-0"})
        chaotic = parallel_map(
            _hang_once_then_square, items, jobs=2, task_timeout=1.0
        )
        serial = parallel_map(_square, list(range(6)), jobs=1)
        assert chaotic == serial

    def test_timeout_resolves_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        items = _args(6, {2: tmp_path / "hang-env"})
        assert parallel_map(_hang_once_then_square, items, jobs=2) == [
            x * x for x in range(6)
        ]
        assert failure_report().timeouts >= 1


class TestRaisingTask:
    def test_raise_once_is_retried_serial(self, tmp_path):
        items = _args(6, {4: tmp_path / "raise-4"})
        assert parallel_map(_raise_once_then_square, items, jobs=1) == [
            x * x for x in range(6)
        ]
        assert failure_report().retries == 1

    @needs_pool
    def test_raise_once_is_retried_pooled(self, tmp_path):
        items = _args(10, {1: tmp_path / "raise-1", 7: tmp_path / "raise-7"})
        chaotic = parallel_map(_raise_once_then_square, items, jobs=3)
        assert chaotic == [x * x for x in range(10)]
        assert failure_report().retries >= 2

    def test_permanent_failure_surfaces_original_exception(self):
        with pytest.raises(ValueError, match="permanent fault on item 0"):
            parallel_map(_always_raise, _args(4, {}), jobs=1, max_retries=1)
        # Budget was spent before giving up: initial attempt + 1 retry.
        assert failure_report().retries == 1

    @needs_pool
    def test_permanent_failure_surfaces_pooled(self):
        with pytest.raises(ValueError, match="permanent fault"):
            parallel_map(_always_raise, _args(4, {}), jobs=2, max_retries=1)


@needs_pool
class TestMixedChaos:
    def test_kill_hang_and_raise_together(self, tmp_path):
        """All three fault kinds in one sweep still yield the serial answer."""
        faulty = {
            2: tmp_path / "mixed-kill",
            6: tmp_path / "mixed-hang",
            10: tmp_path / "mixed-raise",
        }
        items = [
            (x, str(faulty.get(x, "")), _KIND.get(x, "ok")) for x in range(14)
        ]
        chaotic = parallel_map(_mixed_fault, items, jobs=3, task_timeout=1.0)
        assert chaotic == [x * x for x in range(14)]
        # Every fault demonstrably fired (marker written on attempt 1).
        # The SIGKILL teardown is always counted; the hang and the raise
        # may be absorbed by it (their workers die with the pool before
        # the timeout or the retry path observes them), so only the
        # aggregate is asserted beyond the guaranteed crash.
        assert all(marker.exists() for marker in faulty.values())
        report = failure_report()
        assert report.worker_crashes >= 1
        assert report.total >= 1
        # Rerun (markers present, all tasks now clean) is bit-identical.
        assert chaotic == parallel_map(_mixed_fault, items, jobs=1)


_KIND = {2: "kill", 6: "hang", 10: "raise"}


def _mixed_fault(arg: tuple[int, str, str]) -> int:
    x, marker, kind = arg
    if _first_attempt(marker):
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(300.0)
        elif kind == "raise":
            raise RuntimeError(f"injected fault on item {x}")
    return x * x
