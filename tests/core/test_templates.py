"""Parity tests: compiled templates vs the per-point reference models.

The templates are the fast path for every sweep, so they are held to
the reference implementations across all protocols, both hop regimes,
heterogeneous hop vectors and the dense/sparse crossover.  The dense
path is designed to be *bit-identical* (same derived-rate expressions,
same matrix assembly, same stacked LAPACK routine); these tests assert
the ISSUE's 1e-12 budget but the dense cases typically agree exactly.
"""

from __future__ import annotations

import pytest

from repro.core import markov
from repro.core.multihop import MultiHopModel
from repro.core.multihop.heterogeneous import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    hops_from_parameters,
    reach_profile,
)
from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.core.singlehop.transitions import build_transition_rates
from repro.core.templates import (
    multihop_template,
    singlehop_template,
    solve_heterogeneous_tasks,
    solve_multihop_tasks,
    solve_singlehop_tasks,
)

DENSE_TOL = 1e-12
SPARSE_TOL = 1e-9


def _assert_singlehop_parity(solution, reference, tol=DENSE_TOL):
    assert solution.protocol is reference.protocol
    assert solution.params == reference.params
    assert set(solution.stationary) == set(reference.stationary)
    for state, probability in reference.stationary.items():
        assert solution.stationary[state] == pytest.approx(probability, abs=tol)
    assert solution.inconsistency_ratio == pytest.approx(
        reference.inconsistency_ratio, abs=tol
    )
    assert solution.expected_receiver_lifetime == pytest.approx(
        reference.expected_receiver_lifetime, rel=tol, abs=tol
    )
    for component, rate in reference.message_breakdown.items():
        assert solution.message_breakdown[component] == pytest.approx(rate, abs=tol)


def _assert_multihop_parity(solution, reference, tol=DENSE_TOL):
    assert solution.protocol is reference.protocol
    assert set(solution.stationary) == set(reference.stationary)
    for state, probability in reference.stationary.items():
        assert solution.stationary[state] == pytest.approx(probability, abs=tol)
    for component, rate in reference.message_breakdown.items():
        assert solution.message_breakdown[component] == pytest.approx(rate, abs=tol)


def singlehop_grid() -> list[SignalingParameters]:
    base = kazaa_defaults()
    return [
        base,
        base.replace(loss_rate=0.0),
        base.replace(loss_rate=0.3, delay=0.1),
        base.with_coupled_timers(2.0),
        base.replace(update_rate=0.0),
        base.replace(external_false_signal_rate=0.0),
        base.replace(removal_rate=1.0 / 60.0, retransmission_interval=0.5),
    ]


class TestSingleHopTemplates:
    @pytest.mark.parametrize("protocol", Protocol)
    def test_edge_rates_match_reference_table(self, protocol):
        """Accumulated template edges reproduce Table I exactly."""
        template = singlehop_template(protocol)
        for params in singlehop_grid():
            row = template.edge_rates([params])[0]
            accumulated: dict = {}
            for (origin, destination), rate in zip(template.edges, row):
                if rate > 0.0:
                    key = (origin, destination)
                    accumulated[key] = accumulated.get(key, 0.0) + float(rate)
            assert accumulated == build_transition_rates(protocol, params)

    @pytest.mark.parametrize("protocol", Protocol)
    def test_solution_parity_across_grid(self, protocol):
        grid = singlehop_grid()
        solutions = singlehop_template(protocol).solve_batch(grid)
        for params, solution in zip(grid, solutions):
            _assert_singlehop_parity(
                solution, SingleHopModel(protocol, params).solve()
            )

    def test_dense_path_is_bit_identical(self):
        """The headline guarantee: not just 1e-12 — the same bits."""
        params = kazaa_defaults()
        for protocol in Protocol:
            solution = singlehop_template(protocol).solve_batch([params])[0]
            reference = SingleHopModel(protocol, params).solve()
            assert solution.stationary == reference.stationary
            assert solution.expected_receiver_lifetime == (
                reference.expected_receiver_lifetime
            )
            assert solution.message_breakdown == reference.message_breakdown

    def test_task_order_preserved_across_mixed_protocols(self):
        base = kazaa_defaults()
        tasks = [
            (protocol, base.replace(delay=delay))
            for delay in (0.01, 0.03)
            for protocol in (Protocol.HS, Protocol.SS, Protocol.SS_RTR)
        ]
        solutions = solve_singlehop_tasks(tasks)
        assert [s.protocol for s in solutions] == [t[0] for t in tasks]
        assert [s.params for s in solutions] == [t[1] for t in tasks]

    def test_empty_batch(self):
        assert singlehop_template(Protocol.SS).solve_batch([]) == []


def multihop_grid() -> list[MultiHopParameters]:
    base = reservation_defaults()
    return [
        base.replace(hops=1),
        base.replace(hops=3, loss_rate=0.1),
        base.replace(hops=20),
        base.replace(hops=7, loss_rate=0.0),
        base.replace(hops=5).with_coupled_timers(2.0),
    ]


class TestMultiHopTemplates:
    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_edge_rates_match_reference_rates(self, protocol):
        """Accumulated template edges reproduce the Fig. 15/16 rates."""
        for params in multihop_grid():
            template = multihop_template(protocol, params.hops)
            row = template.edge_rates([(params, None)])[0]
            accumulated: dict = {}
            for i, j, rate in zip(template.rows, template.cols, row):
                if rate > 0.0:
                    key = (template.states[i], template.states[j])
                    accumulated[key] = accumulated.get(key, 0.0) + float(rate)
            reference = MultiHopModel(protocol, params).transition_rates()
            assert set(accumulated) == set(reference)
            for key, rate in reference.items():
                assert accumulated[key] == pytest.approx(rate, rel=1e-15)

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_homogeneous_parity(self, protocol):
        grid = multihop_grid()
        solutions = solve_multihop_tasks([(protocol, params) for params in grid])
        for params, solution in zip(grid, solutions):
            _assert_multihop_parity(solution, MultiHopModel(protocol, params).solve())

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_heterogeneous_parity(self, protocol):
        params = reservation_defaults().replace(hops=6)
        vectors = [
            hops_from_parameters(params),
            (HeterogeneousHop(0.2, 0.05),) + hops_from_parameters(params)[1:],
            tuple(
                HeterogeneousHop(loss, delay)
                for loss, delay in zip(
                    (0.0, 0.05, 0.01, 0.3, 0.0, 0.08),
                    (0.01, 0.03, 0.02, 0.1, 0.05, 0.03),
                )
            ),
        ]
        tasks = [(protocol, params, hops) for hops in vectors]
        solutions = solve_heterogeneous_tasks(tasks)
        for hops, solution in zip(vectors, solutions):
            _assert_multihop_parity(
                solution, HeterogeneousMultiHopModel(protocol, params, hops).solve()
            )

    def test_hop_count_mismatch_rejected(self):
        template = multihop_template(Protocol.SS, 5)
        with pytest.raises(ValueError):
            template.solve_batch([(reservation_defaults().replace(hops=4), None)])

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(ValueError):
            multihop_template(Protocol.SS_ER, 5)

    def test_mixed_homogeneous_and_heterogeneous_share_structure(self):
        params = reservation_defaults().replace(hops=4)
        template = multihop_template(Protocol.SS_RT, 4)
        hom, het = template.solve_batch(
            [(params, None), (params, hops_from_parameters(params))]
        )
        # Identical hop values: both flavors must agree on the physics.
        for state, probability in hom.stationary.items():
            assert het.stationary[state] == pytest.approx(probability, rel=1e-9)


class TestSparseCrossover:
    """Template and reference must agree on both sides of the threshold."""

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_crossover_parity_with_lowered_threshold(self, protocol, monkeypatch):
        # 8 hops -> 17 or 18 states: below the real threshold.  Lowering
        # it flips both the reference chain and the template to sparse.
        params = reservation_defaults().replace(hops=8)
        hops = tuple(
            HeterogeneousHop(0.01 + 0.005 * i, 0.02 + 0.001 * i) for i in range(8)
        )
        template = multihop_template(protocol, 8)
        assert not template._use_sparse()
        dense = solve_heterogeneous_tasks([(protocol, params, hops)])[0]
        monkeypatch.setattr(markov, "SPARSE_STATE_THRESHOLD", 10)
        assert template._use_sparse()
        sparse = solve_heterogeneous_tasks([(protocol, params, hops)])[0]
        model = HeterogeneousMultiHopModel(protocol, params, hops)
        chain = model.chain()
        assert chain._use_sparse(len(chain.states))
        reference = model.solve()
        for state, probability in reference.stationary.items():
            assert sparse.stationary[state] == pytest.approx(
                probability, abs=SPARSE_TOL
            )
            assert dense.stationary[state] == pytest.approx(
                probability, abs=SPARSE_TOL
            )

    def test_real_threshold_crossing_at_128_hops(self):
        """128 hops (257 states) crosses the real threshold; 96 does not."""
        below = multihop_template(Protocol.SS, 96)
        above = multihop_template(Protocol.SS, 128)
        assert not below._use_sparse()
        assert above._use_sparse()
        params = reservation_defaults().replace(hops=128)
        solution = solve_multihop_tasks([(Protocol.SS, params)])[0]
        reference = MultiHopModel(Protocol.SS, params).solve()
        _assert_multihop_parity(solution, reference, tol=SPARSE_TOL)


class TestReachProfile:
    def test_prefix_products_match_model_reach(self):
        hops = tuple(
            HeterogeneousHop(loss, 0.03) for loss in (0.0, 0.1, 0.02, 0.3, 0.05)
        )
        params = reservation_defaults().replace(hops=5)
        model = HeterogeneousMultiHopModel(Protocol.SS, params, hops)
        profile = reach_profile(hops)
        assert profile[0] == 1.0
        for k in range(6):
            assert model.reach_probability(k) == profile[k]
        with pytest.raises(ValueError):
            model.reach_probability(6)

    def test_against_paper_homogeneous_formula(self):
        params = reservation_defaults().replace(hops=4, loss_rate=0.02)
        profile = reach_profile(hops_from_parameters(params))
        for k in range(5):
            assert profile[k] == pytest.approx((1.0 - 0.02) ** k, rel=1e-14)


class TestTemplatesDisabledEscapeHatch:
    def test_batches_match_reference_path(self, monkeypatch):
        from repro.runtime import global_cache, solve_singlehop_batch

        base = kazaa_defaults()
        tasks = [
            (protocol, base.replace(delay=delay))
            for protocol in (Protocol.SS, Protocol.HS)
            for delay in (0.01, 0.05)
        ]
        global_cache().clear()
        fast = solve_singlehop_batch(tasks)
        monkeypatch.setenv("REPRO_TEMPLATES", "0")
        global_cache().clear()
        reference = solve_singlehop_batch(tasks)
        global_cache().clear()
        assert [s.stationary for s in fast] == [s.stationary for s in reference]
        assert [s.message_breakdown for s in fast] == [
            s.message_breakdown for s in reference
        ]
