"""Tests for the transient (time-dependent) analysis extension."""

from __future__ import annotations

import math

import pytest

from repro.core.markov import ContinuousTimeMarkovChain
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.core.transient import (
    consistency_probability,
    time_to_consistency,
    transient_distribution,
)


class TestTransientDistribution:
    def test_time_zero_is_start_state(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        [dist] = transient_distribution(chain, "a", [0.0])
        assert dist["a"] == pytest.approx(1.0)
        assert dist["b"] == pytest.approx(0.0)

    def test_exponential_decay_known_solution(self):
        # a -> b at rate 2: P(a at t) = exp(-2t).
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 2.0})
        [dist] = transient_distribution(chain, "a", [0.5])
        assert dist["a"] == pytest.approx(math.exp(-1.0), rel=1e-6)
        assert dist["b"] == pytest.approx(1 - math.exp(-1.0), rel=1e-6)

    def test_distribution_sums_to_one(self):
        chain = ContinuousTimeMarkovChain(
            ["a", "b", "c"], {("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "a"): 0.5}
        )
        for dist in transient_distribution(chain, "a", [0.1, 1.0, 10.0]):
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_long_time_approaches_stationary(self):
        chain = ContinuousTimeMarkovChain(
            ["on", "off"], {("on", "off"): 3.0, ("off", "on"): 2.0}
        )
        [dist] = transient_distribution(chain, "on", [1000.0])
        stationary = chain.stationary_distribution()
        assert dist["on"] == pytest.approx(stationary["on"], abs=1e-9)

    def test_negative_time_rejected(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        with pytest.raises(ValueError):
            transient_distribution(chain, "a", [-1.0])

    def test_unknown_start_rejected(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        with pytest.raises(ValueError):
            transient_distribution(chain, "zzz", [1.0])


class TestConsistencyProbability:
    def test_starts_at_zero(self, params):
        model = SingleHopModel(Protocol.SS, params)
        [p0] = consistency_probability(model, [0.0])
        assert p0 == pytest.approx(0.0)

    def test_rises_past_channel_delay(self, params):
        model = SingleHopModel(Protocol.SS, params)
        probabilities = consistency_probability(
            model, [params.delay / 10, params.delay, 5 * params.delay]
        )
        assert probabilities[0] < probabilities[1] < probabilities[2]

    def test_matches_exponential_delay_race_at_2_delta(self, params):
        # The model's delay is exponential, so at t = 2*Delta:
        # P ~ (1 - p_l) * (1 - e^-2), not the deterministic (1 - p_l).
        model = SingleHopModel(Protocol.SS, params)
        [p] = consistency_probability(model, [2 * params.delay])
        expected = (1 - params.loss_rate) * (1 - math.exp(-2.0))
        assert p == pytest.approx(expected, abs=0.02)

    def test_approaches_one_minus_loss_by_10_delta(self, params):
        # Once the delay race has resolved, one trigger attempt has
        # succeeded with probability ~ 1 - p_l.
        model = SingleHopModel(Protocol.SS, params)
        [p] = consistency_probability(model, [10 * params.delay])
        assert p == pytest.approx(1 - params.loss_rate, abs=0.015)

    def test_reliable_triggers_converge_faster_under_loss(self):
        from repro.core.parameters import kazaa_defaults

        lossy = kazaa_defaults().replace(loss_rate=0.3)
        t_probe = 4 * lossy.retransmission_interval
        ss = consistency_probability(SingleHopModel(Protocol.SS, lossy), [t_probe])[0]
        rt = consistency_probability(SingleHopModel(Protocol.SS_RT, lossy), [t_probe])[0]
        assert rt > ss


class TestTimeToConsistency:
    def test_within_one_delay_for_modest_target(self, params):
        model = SingleHopModel(Protocol.SS, params)
        t90 = time_to_consistency(model, target=0.9)
        assert params.delay * 0.5 <= t90 <= params.delay * 3

    def test_tighter_target_takes_longer(self, params):
        model = SingleHopModel(Protocol.SS_RT, params)
        t90 = time_to_consistency(model, target=0.90)
        t97 = time_to_consistency(model, target=0.97)
        assert t97 >= t90

    def test_unreachable_target_returns_inf(self, params):
        # Updates and removals keep P(consistent) strictly below ~1;
        # 0.9999 is unattainable at the Kazaa defaults.
        model = SingleHopModel(Protocol.SS, params)
        assert time_to_consistency(model, target=0.9999) == float("inf")

    def test_invalid_target_rejected(self, params):
        model = SingleHopModel(Protocol.SS, params)
        with pytest.raises(ValueError):
            time_to_consistency(model, target=1.5)
