"""Tests for the heterogeneous multi-hop extension."""

from __future__ import annotations

import pytest

from repro.core.multihop import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
    MultiHopModel,
    hops_from_parameters,
)
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol


def uniform_params(hops=5, loss=0.02):
    return MultiHopParameters(hops=hops, loss_rate=loss)


class TestConstruction:
    def test_hop_vector_length_checked(self):
        params = uniform_params(hops=5)
        with pytest.raises(ValueError):
            HeterogeneousMultiHopModel(
                Protocol.SS, params, [HeterogeneousHop(0.01, 0.03)] * 4
            )

    def test_invalid_hop_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousHop(loss_rate=1.0, delay=0.03)
        with pytest.raises(ValueError):
            HeterogeneousHop(loss_rate=0.1, delay=0.0)

    def test_unsupported_protocol_rejected(self):
        params = uniform_params()
        with pytest.raises(ValueError):
            HeterogeneousMultiHopModel(
                Protocol.SS_ER, params, hops_from_parameters(params)
            )


class TestHomogeneousEquivalence:
    """With identical hops, the extension must equal the paper's model."""

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_inconsistency_matches(self, protocol):
        params = uniform_params(hops=6, loss=0.05)
        homogeneous = MultiHopModel(protocol, params).solve()
        heterogeneous = HeterogeneousMultiHopModel(
            protocol, params, hops_from_parameters(params)
        ).solve()
        assert heterogeneous.inconsistency_ratio == pytest.approx(
            homogeneous.inconsistency_ratio, rel=1e-9
        )

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_message_rate_matches(self, protocol):
        params = uniform_params(hops=6, loss=0.05)
        homogeneous = MultiHopModel(protocol, params).solve()
        heterogeneous = HeterogeneousMultiHopModel(
            protocol, params, hops_from_parameters(params)
        ).solve()
        assert heterogeneous.message_rate == pytest.approx(
            homogeneous.message_rate, rel=1e-9
        )

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_hop_profile_matches(self, protocol):
        params = uniform_params(hops=4)
        homogeneous = MultiHopModel(protocol, params).solve().hop_profile()
        heterogeneous = (
            HeterogeneousMultiHopModel(protocol, params, hops_from_parameters(params))
            .solve()
            .hop_profile()
        )
        for a, b in zip(homogeneous, heterogeneous):
            assert b == pytest.approx(a, rel=1e-9)


class TestHeterogeneity:
    def make_chain_with_bad_link(self, position: int, protocol=Protocol.SS):
        """A 5-hop chain with one 20%-loss link among 0.5%-loss links."""
        params = uniform_params(hops=5, loss=0.005)
        hops = [HeterogeneousHop(0.005, 0.03) for _ in range(5)]
        hops[position] = HeterogeneousHop(0.20, 0.03)
        return HeterogeneousMultiHopModel(protocol, params, hops).solve()

    def test_reach_probability_products(self):
        params = uniform_params(hops=3)
        hops = [
            HeterogeneousHop(0.1, 0.03),
            HeterogeneousHop(0.2, 0.03),
            HeterogeneousHop(0.5, 0.03),
        ]
        model = HeterogeneousMultiHopModel(Protocol.SS, params, hops)
        assert model.reach_probability(0) == 1.0
        assert model.reach_probability(2) == pytest.approx(0.9 * 0.8)
        assert model.reach_probability(3) == pytest.approx(0.9 * 0.8 * 0.5)

    def test_bad_link_hurts_more_than_clean_chain(self):
        clean = MultiHopModel(Protocol.SS, uniform_params(hops=5, loss=0.005)).solve()
        dirty = self.make_chain_with_bad_link(2)
        assert dirty.inconsistency_ratio > 2 * clean.inconsistency_ratio

    def test_early_bad_link_worse_than_late_for_ss(self):
        # A lossy first link starves every downstream hop of refreshes;
        # a lossy last link only hurts the final hop.
        early = self.make_chain_with_bad_link(0)
        late = self.make_chain_with_bad_link(4)
        assert early.inconsistency_ratio > late.inconsistency_ratio

    def test_hop_by_hop_reliability_localizes_damage(self):
        ss = self.make_chain_with_bad_link(0, Protocol.SS)
        rt = self.make_chain_with_bad_link(0, Protocol.SS_RT)
        assert rt.inconsistency_ratio < 0.4 * ss.inconsistency_ratio

    def test_profile_jumps_at_bad_link(self):
        solution = self.make_chain_with_bad_link(2)
        profile = solution.hop_profile()
        # The step from hop 2 to hop 3 (crossing the bad link) dominates
        # the neighboring steps.
        steps = [b - a for a, b in zip(profile, profile[1:])]
        assert steps[1] > 3 * steps[0]
        assert steps[1] > 3 * steps[2]
