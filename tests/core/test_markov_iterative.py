"""Tests for the ILU-preconditioned iterative CTMC backend."""

from __future__ import annotations

import pytest

from repro.core.markov import ITERATIVE_RTOL, ContinuousTimeMarkovChain
from repro.core.multihop import Topology, TreeModel
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol


def birth_death_chain(n: int, solver: str) -> ContinuousTimeMarkovChain:
    rates = {}
    for i in range(n - 1):
        rates[(i, i + 1)] = 2.0
        rates[(i + 1, i)] = 1.0 + 0.01 * i
    return ContinuousTimeMarkovChain(range(n), rates, solver=solver)


class TestSolverSelection:
    def test_iterative_is_a_valid_solver(self):
        chain = birth_death_chain(4, "iterative")
        assert chain.solver == "iterative"

    def test_auto_never_selects_iterative(self):
        # "iterative" is request-only: it answers under a tolerance
        # contract, so routing must be an explicit caller decision.
        pytest.importorskip("scipy")
        chain = birth_death_chain(400, "auto")
        assert chain._solver in ("auto", "dense", "sparse")

    def test_merge_states_propagates_solver(self):
        chain = ContinuousTimeMarkovChain(
            [0, 1, 2], {(0, 1): 1.0, (1, 2): 2.0, (2, 0): 3.0}, solver="iterative"
        )
        assert chain.merge_states(2, 0).solver == "iterative"


class TestIterativeAccuracy:
    @pytest.fixture(autouse=True)
    def _need_scipy(self):
        pytest.importorskip("scipy")

    def test_birth_death_matches_dense(self):
        dense = birth_death_chain(150, "dense").stationary_distribution()
        iterative = birth_death_chain(150, "iterative").stationary_distribution()
        assert iterative == pytest.approx(dense, abs=1e-10)

    def test_tolerance_contract_is_tight(self):
        # The inner Krylov tolerance must sit well below the 1e-8
        # acceptance bound the parity matrix checks against.
        assert ITERATIVE_RTOL <= 1e-9

    def test_tree_model_iterative_matches_direct(self):
        topology = Topology.broom(2, 3)
        params = reservation_defaults().replace(hops=topology.num_edges)
        direct = TreeModel(Protocol.SS_RT, params, topology).solve()
        iterative = TreeModel(
            Protocol.SS_RT, params, topology, solver="iterative"
        ).solve()
        assert iterative.inconsistency_ratio == pytest.approx(
            direct.inconsistency_ratio, rel=1e-8
        )
        assert iterative.message_rate == pytest.approx(
            direct.message_rate, rel=1e-8
        )

    def test_stationary_sums_to_one_and_nonnegative(self):
        pi = birth_death_chain(80, "iterative").stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(p >= 0.0 for p in pi.values())


class TestIterativeFailureModes:
    @pytest.fixture(autouse=True)
    def _need_scipy(self):
        pytest.importorskip("scipy")

    def test_reducible_chain_raises(self):
        # Two disconnected recurrent classes: the stationary system is
        # singular, and the iterative path must refuse rather than
        # return garbage.
        rates = {(0, 1): 1.0, (1, 0): 1.0, (2, 3): 1.0, (3, 2): 1.0}
        chain = ContinuousTimeMarkovChain([0, 1, 2, 3], rates, solver="iterative")
        with pytest.raises((ValueError, RuntimeError)):
            chain.stationary_distribution()

    def test_scipy_missing_raises_runtime_error(self, monkeypatch):
        import repro.core.markov as markov

        monkeypatch.setattr(markov, "_sparse_modules", lambda: None)
        chain = birth_death_chain(5, "iterative")
        with pytest.raises(RuntimeError, match="scipy"):
            chain.stationary_distribution()
