"""Tests for the scipy.sparse CTMC backend (dense parity + selection)."""

from __future__ import annotations

import pytest

from repro.core.markov import SPARSE_STATE_THRESHOLD, ContinuousTimeMarkovChain
from repro.core.multihop import MultiHopModel
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol


def birth_death_chain(n: int, solver: str) -> ContinuousTimeMarkovChain:
    rates = {}
    for i in range(n - 1):
        rates[(i, i + 1)] = 2.0
        rates[(i + 1, i)] = 1.0 + 0.01 * i
    return ContinuousTimeMarkovChain(range(n), rates, solver=solver)


class TestSolverSelection:
    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain([0, 1], {(0, 1): 1.0, (1, 0): 1.0}, solver="magic")

    def test_auto_stays_dense_below_threshold(self):
        chain = birth_death_chain(8, "auto")
        assert not chain._use_sparse(len(chain.states))

    def test_auto_goes_sparse_above_threshold(self):
        pytest.importorskip("scipy")
        n = SPARSE_STATE_THRESHOLD
        chain = birth_death_chain(n, "auto")
        assert chain._use_sparse(n)

    def test_merge_states_propagates_solver(self):
        chain = ContinuousTimeMarkovChain(
            [0, 1, 2], {(0, 1): 1.0, (1, 2): 2.0, (2, 0): 3.0}, solver="sparse"
        )
        assert chain.merge_states(2, 0).solver == "sparse"


class TestDenseSparseParity:
    @pytest.fixture(autouse=True)
    def _need_scipy(self):
        pytest.importorskip("scipy")

    def test_stationary_distribution_matches_dense(self):
        dense = birth_death_chain(120, "dense").stationary_distribution()
        sparse = birth_death_chain(120, "sparse").stationary_distribution()
        assert sparse == pytest.approx(dense, abs=1e-12)

    def test_mean_time_to_absorption_matches_dense(self):
        n = 120
        dense = birth_death_chain(n, "dense").mean_time_to_absorption(0, [n - 1])
        sparse = birth_death_chain(n, "sparse").mean_time_to_absorption(0, [n - 1])
        assert sparse == pytest.approx(dense, rel=1e-9)

    def test_small_chain_forced_sparse_matches_dense(self):
        rates = {(0, 1): 0.7, (1, 2): 2.0, (2, 0): 3.0, (1, 0): 0.1}
        dense = ContinuousTimeMarkovChain([0, 1, 2], rates, solver="dense")
        sparse = ContinuousTimeMarkovChain([0, 1, 2], rates, solver="sparse")
        assert sparse.stationary_distribution() == pytest.approx(
            dense.stationary_distribution(), abs=1e-12
        )

    def test_multihop_model_chain_parity(self):
        """The paper's own chains give identical metrics on both backends."""
        params = reservation_defaults()
        model = MultiHopModel(Protocol.SS, params)
        dense = ContinuousTimeMarkovChain(
            model.chain().states, model.transition_rates(), solver="dense"
        ).stationary_distribution()
        sparse = ContinuousTimeMarkovChain(
            model.chain().states, model.transition_rates(), solver="sparse"
        ).stationary_distribution()
        assert sparse == pytest.approx(dense, abs=1e-12)

    def test_large_multihop_chain_solves_sparse(self):
        """A 400-hop heterogeneous-regime chain crosses the auto
        threshold and still produces a valid distribution."""
        params = reservation_defaults().replace(hops=400)
        model = MultiHopModel(Protocol.SS, params)
        chain = model.chain()
        assert len(chain.states) >= SPARSE_STATE_THRESHOLD
        pi = chain.stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)
        assert all(p >= 0.0 for p in pi.values())

    def test_sparse_generator_matches_dense(self):
        import numpy as np

        chain = birth_death_chain(50, "auto")
        assert np.allclose(chain.sparse_generator_matrix().toarray(), chain.generator_matrix())


class TestSparseErrorHandling:
    @pytest.fixture(autouse=True)
    def _need_scipy(self):
        pytest.importorskip("scipy")

    def test_two_closed_classes_rejected(self):
        chain = ContinuousTimeMarkovChain(
            [0, 1, 2, 3],
            {(0, 1): 1.0, (1, 0): 1.0, (2, 3): 1.0, (3, 2): 1.0},
            solver="sparse",
        )
        with pytest.raises(ValueError):
            chain.stationary_distribution()

    def test_uncertain_absorption_rejected(self):
        chain = ContinuousTimeMarkovChain(
            [0, 1, 2], {(0, 1): 1.0, (1, 0): 1.0}, solver="sparse"
        )
        with pytest.raises(ValueError):
            chain.mean_time_to_absorption(0, [2])
