"""Exact subtree lumping: orbit counts, backend routing, parity proofs.

The load-bearing assertions come in two strengths.  Over *exact
rational arithmetic* the strong-lumpability theorem is an identity, so
solving both generators with :class:`fractions.Fraction` Gaussian
elimination must reproduce ``sum(pi[x] for x in orbit) == pi_hat[orbit]``
with ``==`` — any discrepancy is a wiring bug in the orbit projection
or the multiplicity bookkeeping, not roundoff.  Float solves of the
lumped and direct chains accumulate in different orders, so those
compare under tight tolerances; the lumped *template*, which scatters
the identical ``tree_tag_rate * multiplicity`` floats as the lumped
model, stays bit-identical to it.
"""

import math
from fractions import Fraction

import pytest

from repro.core.multihop import (
    LumpedTreeModel,
    StateSpaceLimitError,
    Topology,
    TreeModel,
    lump_tree_state,
    lumped_state_space,
    projected_lumped_states,
    projected_tree_states,
    select_tree_backend,
    tree_state_space,
)
from repro.core.multihop import lumping as _lumping
from repro.core.multihop.lumping import MAX_LUMPED_TREE_STATES
from repro.core.multihop.tree_transitions import tree_tag_rate
from repro.core.multihop.tree_states import (
    MAX_ENUMERATED_TREE_STATES,
    MAX_TREE_STATES,
)
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.core.templates import LumpedTreeTemplate

MULTIHOP = Protocol.multihop_family()


def params_for(topology: Topology, **overrides):
    return reservation_defaults().replace(hops=topology.num_edges, **overrides)


class TestOrbitCounts:
    def test_star_orbits_are_triangular(self):
        # k exchangeable leaves with 3 per-edge configs: C(k+2, 2).
        for k in (1, 2, 3, 5, 8, 16, 64):
            topo = Topology.star(k)
            expected = math.comb(k + 2, 2)
            assert projected_lumped_states(topo) == expected
            if expected <= 4000:
                assert len(lumped_state_space(topo, False)) == expected
                assert len(lumped_state_space(topo, True)) == expected + 1

    def test_binary_depth_three_breaks_the_wall(self):
        topo = Topology.kary(2, 3)
        assert projected_tree_states(topo) == 15129
        assert projected_lumped_states(topo) == 741
        assert len(lumped_state_space(topo, False)) == 741

    def test_ternary_depth_two(self):
        topo = Topology.kary(3, 2)
        assert projected_tree_states(topo) == 24389
        assert projected_lumped_states(topo) == 364

    def test_chain_does_not_lump(self):
        # Unary nodes have singleton sibling groups: nothing merges.
        for hops in (1, 3, 5):
            topo = Topology.chain(hops)
            assert projected_lumped_states(topo) == projected_tree_states(topo)

    def test_projection_matches_enumeration(self):
        for topo in (
            Topology.star(4),
            Topology.broom(2, 3),
            Topology.kary(2, 2),
            Topology.skewed(3),
        ):
            assert projected_lumped_states(topo) == len(
                lumped_state_space(topo, False)
            )

    def test_lumped_enumeration_respects_cap(self):
        topo = Topology.kary(3, 3)  # ~8.2M orbits
        assert projected_lumped_states(topo) > MAX_LUMPED_TREE_STATES
        with pytest.raises(StateSpaceLimitError, match="exceeds") as excinfo:
            lumped_state_space(topo, False)
        assert excinfo.value.topology.parents == topo.parents
        assert excinfo.value.projected == projected_lumped_states(topo)
        assert excinfo.value.limit == MAX_LUMPED_TREE_STATES


class TestBackendSelection:
    def test_small_topologies_stay_direct(self):
        for topo in (Topology.chain(3), Topology.star(2), Topology.kary(2, 2)):
            assert projected_tree_states(topo) <= MAX_TREE_STATES
            assert select_tree_backend(topo) == "direct"

    def test_lumpable_topologies_route_lumped(self):
        for topo in (Topology.star(8), Topology.kary(2, 3), Topology.kary(3, 2)):
            assert projected_tree_states(topo) > MAX_TREE_STATES
            assert select_tree_backend(topo) == "lumped"

    def test_unlumpable_topologies_route_iterative(self):
        topo = Topology.skewed(8)  # 8747 raw, 6560 orbits: barely lumps
        assert select_tree_backend(topo) == "iterative"

    def test_oversized_topologies_raise_structured_error(self):
        topo = Topology.kary(3, 3)
        with pytest.raises(StateSpaceLimitError, match="exceeds") as excinfo:
            select_tree_backend(topo)
        assert excinfo.value.projected == projected_tree_states(topo)
        assert excinfo.value.limit == MAX_ENUMERATED_TREE_STATES


def _exact_stationary(rates, states):
    """Stationary distribution by Fraction Gaussian elimination.

    Solves ``pi Q = 0`` with the last balance equation replaced by the
    normalization constraint; every float rate enters as its exact
    binary rational, so the result is the exact stationary vector of
    the float-specified generator.
    """
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    zero = Fraction(0)
    # a[i][j] holds column j of Q^T row i; the last row is all-ones.
    a = [[zero] * n for _ in range(n)]
    for (origin, destination), rate in rates.items():
        q = Fraction(rate)
        i, j = index[origin], index[destination]
        a[j][i] += q
        a[i][i] -= q
    a[n - 1] = [Fraction(1)] * n
    b = [zero] * (n - 1) + [Fraction(1)]
    for col in range(n):
        pivot = next(r for r in range(col, n) if a[r][col] != 0)
        a[col], a[pivot] = a[pivot], a[col]
        b[col], b[pivot] = b[pivot], b[col]
        for row in range(col + 1, n):
            if a[row][col] == 0:
                continue
            factor = a[row][col] / a[col][col]
            b[row] -= factor * b[col]
            for k in range(col, n):
                a[row][k] -= factor * a[col][k]
    pi = [zero] * n
    for row in range(n - 1, -1, -1):
        acc = b[row]
        for k in range(row + 1, n):
            acc -= a[row][k] * pi[k]
        pi[row] = acc / a[row][row]
    return {state: pi[i] for state, i in index.items()}


def _exact_tree_rates(protocol, params, topology):
    """The raw tree generator with every tag rate an exact rational."""
    from repro.core.multihop import tree_transition_specs

    rates = {}
    for origin, destination, tag in tree_transition_specs(protocol, topology):
        if origin == destination:
            continue
        rate = Fraction(tree_tag_rate(protocol, params, topology, tag))
        if rate > 0:
            key = (origin, destination)
            rates[key] = rates.get(key, Fraction(0)) + rate
    return rates


def _exact_lumped_rates(protocol, params, topology):
    """The lumped generator with exact ``Fraction(rate) * multiplicity``.

    ``build_lumped_rates`` stores the rounded float product; here the
    integer multiplicity scales the exact rational of the tag rate, so
    the lumped generator aggregates the raw generator *exactly* and the
    strong-lumpability identity holds with ``==``.
    """
    rates = {}
    for origin, destination, tag, mult in _lumping.lumped_transition_specs(
        protocol, topology
    ):
        if origin == destination:
            continue
        rate = Fraction(tree_tag_rate(protocol, params, topology, tag)) * mult
        if rate > 0:
            key = (origin, destination)
            rates[key] = rates.get(key, Fraction(0)) + rate
    return rates


EXACT_SHAPES = (Topology.star(3), Topology.broom(1, 2), Topology.skewed(2))


class TestExactRationalLumping:
    @pytest.mark.parametrize("protocol", MULTIHOP, ids=lambda p: p.value)
    @pytest.mark.parametrize(
        "topology", EXACT_SHAPES, ids=lambda t: str(t.parents)
    )
    def test_orbit_masses_are_bit_identical_over_rationals(
        self, protocol, topology
    ):
        params = params_for(topology)
        raw_pi = _exact_stationary(
            _exact_tree_rates(protocol, params, topology),
            tree_state_space(topology, protocol is Protocol.HS),
        )
        lumped_pi = _exact_stationary(
            _exact_lumped_rates(protocol, params, topology),
            lumped_state_space(topology, protocol is Protocol.HS),
        )
        aggregated = {}
        for state, mass in raw_pi.items():
            orbit = lump_tree_state(topology, state)
            aggregated[orbit] = aggregated.get(orbit, Fraction(0)) + mass
        assert set(aggregated) == set(lumped_pi)
        for orbit, mass in lumped_pi.items():
            assert aggregated[orbit] == mass  # exact: Fraction == Fraction


FLOAT_SHAPES = (
    Topology.star(5),
    Topology.broom(2, 3),
    Topology.kary(2, 2),
    Topology.skewed(4),
    Topology.chain(3),
)


class TestFloatParity:
    @pytest.mark.parametrize("protocol", MULTIHOP, ids=lambda p: p.value)
    @pytest.mark.parametrize(
        "topology", FLOAT_SHAPES, ids=lambda t: str(t.parents)
    )
    def test_lumped_matches_direct_below_cap(self, protocol, topology):
        params = params_for(topology)
        direct = TreeModel(protocol, params, topology).solve()
        lumped = LumpedTreeModel(protocol, params, topology).solve()
        rel = 1e-9
        assert lumped.inconsistency_ratio == pytest.approx(
            direct.inconsistency_ratio, rel=rel, abs=1e-12
        )
        assert lumped.message_rate == pytest.approx(direct.message_rate, rel=rel)
        assert lumped.mean_leaf_inconsistency == pytest.approx(
            direct.mean_leaf_inconsistency, rel=rel, abs=1e-12
        )
        assert lumped.fanout_weighted_inconsistency == pytest.approx(
            direct.fanout_weighted_inconsistency, rel=rel, abs=1e-12
        )
        for node in range(1, topology.num_nodes):
            assert lumped.node_inconsistency(node) == pytest.approx(
                direct.node_inconsistency(node), rel=rel, abs=1e-12
            )

    @pytest.mark.parametrize(
        "topology", FLOAT_SHAPES[:3], ids=lambda t: str(t.parents)
    )
    def test_orbit_masses_match_aggregated_direct(self, topology):
        params = params_for(topology)
        direct = TreeModel(Protocol.SS, params, topology).solve()
        lumped = LumpedTreeModel(Protocol.SS, params, topology).solve()
        aggregated = {}
        for state, mass in direct.stationary.items():
            orbit = lump_tree_state(topology, state)
            aggregated[orbit] = aggregated.get(orbit, 0.0) + mass
        assert set(aggregated) == set(lumped.stationary)
        for orbit, mass in lumped.stationary.items():
            assert aggregated[orbit] == pytest.approx(mass, rel=1e-9, abs=1e-13)


class TestTemplateBitParity:
    @pytest.mark.parametrize("protocol", MULTIHOP, ids=lambda p: p.value)
    def test_lumped_template_is_bit_identical_to_lumped_model(self, protocol):
        topology = Topology.broom(2, 2)
        points = [
            params_for(topology),
            params_for(topology, loss_rate=0.17),
            params_for(topology, refresh_interval=2.5),
        ]
        template = LumpedTreeTemplate(protocol, topology)
        batched = template.solve_batch(points)
        for params, fast in zip(points, batched):
            reference = LumpedTreeModel(protocol, params, topology).solve()
            assert fast.stationary == reference.stationary
            assert fast.inconsistency_ratio == reference.inconsistency_ratio
            assert fast.message_rate == reference.message_rate
            assert (
                fast.mean_leaf_inconsistency == reference.mean_leaf_inconsistency
            )


class TestIterativeAboveCap:
    def test_iterative_agrees_with_lumped_exact_above_the_old_cap(self):
        topology = Topology.star(8)  # 6561 raw states: over MAX_TREE_STATES
        assert projected_tree_states(topology) > MAX_TREE_STATES
        params = params_for(topology)
        lumped = LumpedTreeModel(Protocol.SS, params, topology).solve()
        iterative = TreeModel(
            Protocol.SS,
            params,
            topology,
            max_states=MAX_ENUMERATED_TREE_STATES,
            solver="iterative",
        ).solve()
        assert iterative.inconsistency_ratio == pytest.approx(
            lumped.inconsistency_ratio, rel=1e-8
        )
        assert iterative.message_rate == pytest.approx(
            lumped.message_rate, rel=1e-8
        )
        assert iterative.mean_leaf_inconsistency == pytest.approx(
            lumped.mean_leaf_inconsistency, rel=1e-8
        )


_hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def _random_trees(max_raw_states):
    """Random star/k-ary/broom topologies with at most ``max_raw_states``."""
    shapes = st.one_of(
        st.integers(1, 7).map(Topology.star),
        st.tuples(st.integers(2, 3), st.integers(1, 2)).map(
            lambda bd: Topology.kary(*bd)
        ),
        st.tuples(st.integers(1, 3), st.integers(1, 4)).map(
            lambda hf: Topology.broom(*hf)
        ),
    )
    return shapes.filter(lambda t: projected_tree_states(t) <= max_raw_states)


class TestLumpingProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        topology=_random_trees(130),
        protocol=st.sampled_from(MULTIHOP),
    )
    def test_random_trees_lump_bit_identically_over_rationals(
        self, topology, protocol
    ):
        # The == form of the lumpability identity: exact rational solves
        # of the float-specified generators agree orbit by orbit.
        params = params_for(topology)
        raw_pi = _exact_stationary(
            _exact_tree_rates(protocol, params, topology),
            tree_state_space(topology, protocol is Protocol.HS),
        )
        lumped_pi = _exact_stationary(
            _exact_lumped_rates(protocol, params, topology),
            lumped_state_space(topology, protocol is Protocol.HS),
        )
        aggregated = {}
        for state, mass in raw_pi.items():
            orbit = lump_tree_state(topology, state)
            aggregated[orbit] = aggregated.get(orbit, Fraction(0)) + mass
        assert aggregated == lumped_pi  # exact Fraction equality

    @settings(max_examples=10, deadline=None)
    @given(
        topology=_random_trees(MAX_TREE_STATES),
        protocol=st.sampled_from(MULTIHOP),
        loss_rate=st.floats(0.01, 0.4),
    )
    def test_random_trees_below_the_old_cap_match_direct(
        self, topology, protocol, loss_rate
    ):
        params = params_for(topology, loss_rate=loss_rate)
        direct = TreeModel(protocol, params, topology).solve()
        lumped = LumpedTreeModel(protocol, params, topology).solve()
        assert lumped.inconsistency_ratio == pytest.approx(
            direct.inconsistency_ratio, rel=1e-9, abs=1e-12
        )
        assert lumped.message_rate == pytest.approx(
            direct.message_rate, rel=1e-9
        )
        assert lumped.mean_leaf_inconsistency == pytest.approx(
            direct.mean_leaf_inconsistency, rel=1e-9, abs=1e-12
        )


class TestLumpedStateProjection:
    def test_full_and_slow_states_project_to_canonical_orbits(self):
        topology = Topology.star(3)
        raw = tree_state_space(topology, False)
        orbits = {lump_tree_state(topology, state) for state in raw}
        assert len(orbits) == projected_lumped_states(topology)

    def test_recovery_projects_to_itself(self):
        from repro.core.multihop import RECOVERY

        assert lump_tree_state(Topology.star(2), RECOVERY) is RECOVERY
