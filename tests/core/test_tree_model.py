"""The tree (multicast) analytic model: states, rates, metrics, parity.

The load-bearing assertions are the **bit-parity** ones: on a unary
chain topology the tree model must reproduce the chain model with
``==`` — state order, stationary distribution, message components and
per-node metrics — because the repo's fast-path guarantees are anchored
to the chain reference.
"""

import pytest

from repro.core.multihop import (
    MultiHopModel,
    RECOVERY,
    Topology,
    TreeModel,
    build_multihop_rates,
    build_tree_rates,
    multihop_state_space,
    tree_expected_link_crossings,
    tree_state_space,
)
from repro.core.multihop.messages import expected_link_crossings
from repro.core.multihop.tree_states import MAX_TREE_STATES, TreeState
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol

MULTIHOP = Protocol.multihop_family()


def params_for(topology: Topology, **overrides):
    return reservation_defaults().replace(hops=topology.num_edges, **overrides)


class TestStateSpace:
    def test_chain_count_matches_chain_model(self):
        for hops in (1, 2, 5):
            topo = Topology.chain(hops)
            assert len(tree_state_space(topo, False)) == 2 * hops + 1
            assert len(tree_state_space(topo, True)) == 2 * hops + 2

    def test_chain_order_matches_chain_model_position_by_position(self):
        topo = Topology.chain(4)
        tree_states = tree_state_space(topo, True)
        chain_states = multihop_state_space(4, with_recovery=True)
        for tree_state, chain_state in zip(tree_states, chain_states):
            if chain_state is RECOVERY:
                assert tree_state is RECOVERY
            else:
                consistent = tuple(range(1, chain_state.consistent_hops + 1))
                slow = (
                    (chain_state.consistent_hops + 1,) if chain_state.slow else ()
                )
                assert tree_state == TreeState(consistent, slow)

    def test_star_count_is_three_to_the_k(self):
        # Each leaf edge is independently fast, slow or crossed.
        for k in (1, 2, 3, 4):
            assert len(tree_state_space(Topology.star(k), False)) == 3**k

    def test_binary_depth_2_count(self):
        assert len(tree_state_space(Topology.kary(2, 2), False)) == 121

    def test_start_state_is_first_and_full_state_present(self):
        topo = Topology.kary(2, 2)
        states = tree_state_space(topo, False)
        assert states[0] == TreeState((), ())
        assert TreeState(tuple(range(1, 7)), ()) in states

    def test_downward_closure_and_frontier_slow_validity(self):
        topo = Topology.kary(2, 2)
        for state in tree_state_space(topo, False):
            members = {0, *state.consistent}
            for node in state.consistent:
                assert topo.parent(node) in members, state
            for node in state.slow:
                assert node not in state.consistent, state
                assert topo.parent(node) in members, state

    def test_state_count_cap(self):
        with pytest.raises(ValueError, match="exceeds"):
            tree_state_space(Topology.kary(2, 3), False)
        assert MAX_TREE_STATES < 15129

    def test_cap_error_is_structured(self):
        from repro.core.multihop import StateSpaceLimitError, projected_tree_states

        topo = Topology.kary(2, 3)
        with pytest.raises(StateSpaceLimitError) as excinfo:
            tree_state_space(topo, False)
        error = excinfo.value
        assert isinstance(error, ValueError)  # legacy callers keep working
        assert error.topology.parents == topo.parents
        assert error.projected == projected_tree_states(topo) == 15129
        assert error.limit == MAX_TREE_STATES

    def test_cap_check_runs_before_materialization(self):
        # star(60) projects 3^60 states; the multiplicative pre-check
        # must refuse instantly instead of enumerating.
        import time

        from repro.core.multihop import StateSpaceLimitError

        start = time.perf_counter()
        with pytest.raises(StateSpaceLimitError) as excinfo:
            tree_state_space(Topology.star(60), False)
        assert time.perf_counter() - start < 1.0
        assert excinfo.value.projected == 3**60

    def test_max_states_raises_the_cap(self):
        topo = Topology.star(8)  # 6561 raw states
        states = tree_state_space(topo, False, max_states=10_000)
        assert len(states) == 6561


class TestUnaryChainBitParity:
    @pytest.mark.parametrize("protocol", MULTIHOP, ids=lambda p: p.value)
    @pytest.mark.parametrize("hops", [1, 3, 7])
    def test_rates_bit_identical_to_chain(self, protocol, hops):
        topo = Topology.chain(hops)
        params = params_for(topo)
        chain_rates = build_multihop_rates(protocol, params)
        tree_rates = build_tree_rates(protocol, params, topo)
        assert len(chain_rates) == len(tree_rates)
        # Same multiset of rate values with identical floats, keyed by
        # the positional state mapping.
        chain_states = multihop_state_space(hops, protocol is Protocol.HS)
        tree_states = tree_state_space(topo, protocol is Protocol.HS)
        mapping = dict(zip(chain_states, tree_states))
        for (origin, destination), rate in chain_rates.items():
            assert tree_rates[(mapping[origin], mapping[destination])] == rate

    @pytest.mark.parametrize("protocol", MULTIHOP, ids=lambda p: p.value)
    @pytest.mark.parametrize(
        "overrides",
        [{}, {"loss_rate": 0.2}, {"loss_rate": 0.0}, {"delay": 0.3}],
        ids=["base", "lossy", "lossless", "slow-links"],
    )
    def test_solution_bit_identical_to_chain(self, protocol, overrides):
        topo = Topology.chain(5)
        params = params_for(topo, **overrides)
        chain = MultiHopModel(protocol, params).solve()
        tree = TreeModel(protocol, params, topo).solve()
        assert list(chain.stationary.values()) == list(tree.stationary.values())
        assert chain.inconsistency_ratio == tree.inconsistency_ratio
        assert chain.message_breakdown == tree.message_breakdown
        assert chain.message_rate == tree.message_rate
        for hop in range(1, 6):
            assert chain.hop_inconsistency(hop) == tree.node_inconsistency(hop)
        assert chain.hop_inconsistency(5) == tree.leaf_inconsistency(5)
        assert chain.hop_inconsistency(5) == tree.mean_leaf_inconsistency
        assert chain.hop_inconsistency(5) == tree.fanout_weighted_inconsistency
        assert chain.integrated_cost(10.0) == tree.integrated_cost(10.0)


class TestTreeMetrics:
    def test_stationary_sums_to_one(self):
        for topo in (Topology.star(3), Topology.kary(2, 2), Topology.skewed(3)):
            for protocol in MULTIHOP:
                solution = TreeModel(protocol, params_for(topo), topo).solve()
                assert sum(solution.stationary.values()) == pytest.approx(1.0)
                assert 0.0 <= solution.inconsistency_ratio <= 1.0

    def test_star_leaves_are_symmetric(self):
        topo = Topology.star(4)
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        profile = solution.leaf_profile()
        assert len(profile) == 4
        for value in profile[1:]:
            assert value == pytest.approx(profile[0], rel=1e-12)

    def test_any_leaf_dominates_mean_leaf(self):
        topo = Topology.star(5)
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        assert solution.inconsistency_ratio > solution.mean_leaf_inconsistency
        assert solution.reach_profile() == [
            1.0 - value for value in solution.leaf_profile()
        ]

    def test_fanout_widening_grows_any_leaf_inconsistency(self):
        values = []
        for k in (1, 2, 4):
            topo = Topology.star(k)
            values.append(
                TreeModel(Protocol.SS, params_for(topo), topo).solve().inconsistency_ratio
            )
        assert values[0] < values[1] < values[2]

    def test_deeper_leaves_are_more_inconsistent(self):
        topo = Topology.skewed(3)
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        # Leaf 2 sits at depth 2, leaves 4/5 at depth 3.
        assert solution.leaf_inconsistency(2) < solution.leaf_inconsistency(5)

    def test_fanout_weighting_emphasizes_wide_splitters(self):
        # Root fans out to one shallow leaf and one deep 3-way splitter:
        # the weighted metric must exceed the uniform mean.
        topo = Topology((0, 0, 2, 2, 2))
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        assert (
            solution.fanout_weighted_inconsistency
            > solution.mean_leaf_inconsistency
        )

    def test_node_inconsistency_monotone_along_paths(self):
        topo = Topology.kary(2, 2)
        solution = TreeModel(Protocol.SS_RT, params_for(topo), topo).solve()
        # A child can only be consistent when its parent is.
        assert solution.node_inconsistency(1) <= solution.node_inconsistency(3)

    def test_hs_recovery_state_present(self):
        topo = Topology.star(2)
        solution = TreeModel(Protocol.HS, params_for(topo), topo).solve()
        assert RECOVERY in solution.stationary
        assert solution.stationary[RECOVERY] > 0.0


class TestLinkCrossings:
    def test_chain_uses_closed_form(self):
        topo = Topology.chain(6)
        params = params_for(topo)
        assert tree_expected_link_crossings(topo, params) == expected_link_crossings(
            params
        )

    def test_general_tree_sums_reach_probabilities(self):
        topo = Topology.kary(2, 2)
        params = params_for(topo, loss_rate=0.1)
        expected = 2 * 1.0 + 4 * 0.9  # two root edges + four depth-2 edges
        assert tree_expected_link_crossings(topo, params) == pytest.approx(expected)

    def test_lossless_counts_every_edge(self):
        topo = Topology.skewed(3)
        params = params_for(topo, loss_rate=0.0)
        assert tree_expected_link_crossings(topo, params) == pytest.approx(
            topo.num_edges
        )


class TestErrors:
    def test_hops_mismatch_rejected(self):
        topo = Topology.star(3)
        with pytest.raises(ValueError, match="edge"):
            TreeModel(Protocol.SS, reservation_defaults(), topo)

    def test_non_multihop_protocol_rejected(self):
        topo = Topology.star(2)
        with pytest.raises(ValueError, match="not modeled"):
            TreeModel(Protocol.SS_ER, params_for(topo), topo)

    def test_leaf_metric_rejects_internal_node(self):
        topo = Topology.kary(2, 2)
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        with pytest.raises(ValueError, match="not a leaf"):
            solution.leaf_inconsistency(1)

    def test_node_metric_bounds(self):
        topo = Topology.star(2)
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        with pytest.raises(ValueError):
            solution.node_inconsistency(0)
        with pytest.raises(ValueError):
            solution.node_inconsistency(3)

    def test_negative_cost_weight_rejected(self):
        topo = Topology.star(2)
        solution = TreeModel(Protocol.SS, params_for(topo), topo).solve()
        with pytest.raises(ValueError):
            solution.integrated_cost(-1.0)
