"""Tests for the protocol capability flags (paper §II definitions)."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol


class TestCapabilityMatrix:
    """Each protocol's mechanisms as described in §II."""

    @pytest.mark.parametrize(
        "protocol,refreshes,timeout,rel_trig,exp_rm,rel_rm,notify",
        [
            (Protocol.SS, True, True, False, False, False, False),
            (Protocol.SS_ER, True, True, False, True, False, False),
            (Protocol.SS_RT, True, True, True, False, False, True),
            (Protocol.SS_RTR, True, True, True, True, True, True),
            (Protocol.HS, False, False, True, True, True, True),
        ],
    )
    def test_flags(self, protocol, refreshes, timeout, rel_trig, exp_rm, rel_rm, notify):
        assert protocol.uses_refreshes is refreshes
        assert protocol.uses_state_timeout is timeout
        assert protocol.reliable_triggers is rel_trig
        assert protocol.explicit_removal is exp_rm
        assert protocol.reliable_removal is rel_rm
        assert protocol.removal_notification is notify

    def test_values_match_paper_names(self):
        assert [p.value for p in Protocol] == ["SS", "SS+ER", "SS+RT", "SS+RTR", "HS"]

    def test_soft_state_family(self):
        family = Protocol.soft_state_family()
        assert Protocol.HS not in family
        assert len(family) == 4

    def test_multihop_family(self):
        assert Protocol.multihop_family() == (Protocol.SS, Protocol.SS_RT, Protocol.HS)

    def test_reliable_removal_implies_explicit_removal(self):
        for protocol in Protocol:
            if protocol.reliable_removal:
                assert protocol.explicit_removal

    def test_reliable_removal_implies_reliable_triggers(self):
        # The spectrum is ordered: removal reliability is only added on
        # top of trigger reliability (SS+RTR, HS).
        for protocol in Protocol:
            if protocol.reliable_removal:
                assert protocol.reliable_triggers

    def test_lookup_by_value(self):
        assert Protocol("SS+ER") is Protocol.SS_ER
