"""Tests for the single-hop model's metrics (eqs. 1-8)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel, SingleHopState, solve_all
from repro.core.singlehop.states import INCONSISTENT_STATES

S = SingleHopState


class TestSolutionBasics:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_stationary_sums_to_one(self, protocol, params):
        solution = SingleHopModel(protocol, params).solve()
        assert sum(solution.stationary.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_is_one_minus_consistent(self, protocol, params):
        solution = SingleHopModel(protocol, params).solve()
        assert solution.inconsistency_ratio == pytest.approx(
            1.0 - solution.stationary[S.CONSISTENT]
        )

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_eq1_sum_of_inconsistent_states(self, protocol, params):
        solution = SingleHopModel(protocol, params).solve()
        total = sum(solution.occupancy(state) for state in INCONSISTENT_STATES)
        assert solution.inconsistency_ratio == pytest.approx(total, abs=1e-12)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_in_unit_interval(self, protocol, params):
        solution = SingleHopModel(protocol, params).solve()
        assert 0.0 <= solution.inconsistency_ratio <= 1.0

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_lifetime_at_least_mean_session(self, protocol, params):
        # The receiver cannot discard state before the sender removes
        # it (false removals are rare at the defaults), so L >~ 1/mu_r.
        solution = SingleHopModel(protocol, params).solve()
        assert solution.expected_receiver_lifetime > 0.9 * params.mean_session_length

    def test_ss_lifetime_includes_timeout_tail(self, params):
        # Pure SS holds orphaned state for ~T after sender removal.
        solution = SingleHopModel(Protocol.SS, params).solve()
        assert solution.expected_receiver_lifetime > params.mean_session_length

    def test_zero_removal_rate_rejected(self, params):
        with pytest.raises(ValueError):
            SingleHopModel(Protocol.SS, params.replace(removal_rate=0.0))

    def test_occupancy_missing_state_is_zero(self, params):
        solution = SingleHopModel(Protocol.SS, params).solve()
        assert solution.occupancy(S.S01_SLOW) == 0.0  # state absent in SS


class TestMessageMetrics:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_message_rate_positive(self, protocol, params):
        solution = SingleHopModel(protocol, params).solve()
        assert solution.message_rate > 0.0

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_total_messages_consistent_with_rate(self, protocol, params):
        solution = SingleHopModel(protocol, params).solve()
        assert solution.total_messages == pytest.approx(
            solution.expected_receiver_lifetime * solution.message_rate
        )

    def test_unused_components_zero_for_ss(self, params):
        breakdown = SingleHopModel(Protocol.SS, params).solve().message_breakdown
        assert breakdown["removals"] == 0.0
        assert breakdown["trigger_retransmissions"] == 0.0
        assert breakdown["trigger_acks"] == 0.0
        assert breakdown["removal_notifications"] == 0.0
        assert breakdown["removal_retransmissions"] == 0.0
        assert breakdown["removal_acks"] == 0.0
        assert breakdown["triggers"] > 0.0
        assert breakdown["refreshes"] > 0.0

    def test_hs_has_no_refreshes(self, params):
        breakdown = SingleHopModel(Protocol.HS, params).solve().message_breakdown
        assert breakdown["refreshes"] == 0.0
        assert breakdown["trigger_acks"] > 0.0
        assert breakdown["removals"] > 0.0

    def test_refresh_component_dominates_ss_at_defaults(self, params):
        # With R = 5s and updates every 20s, refreshes are the bulk of
        # SS's signaling (the paper's Fig. 4b shows SS ~ 0.25 = ~1/R).
        breakdown = SingleHopModel(Protocol.SS, params).solve().message_breakdown
        assert breakdown["refreshes"] > 0.5 * sum(breakdown.values())

    def test_integrated_cost_formula(self, params):
        solution = SingleHopModel(Protocol.SS_ER, params).solve()
        expected = 10.0 * solution.inconsistency_ratio + solution.normalized_message_rate
        assert solution.integrated_cost(10.0) == pytest.approx(expected)

    def test_integrated_cost_negative_weight_rejected(self, params):
        solution = SingleHopModel(Protocol.SS, params).solve()
        with pytest.raises(ValueError):
            solution.integrated_cost(-1.0)


class TestPaperOrderings:
    """Qualitative relations the paper derives from the model (§III-A.3)."""

    def test_explicit_removal_improves_consistency(self, params):
        solutions = solve_all(params)
        assert (
            solutions[Protocol.SS_ER].inconsistency_ratio
            < solutions[Protocol.SS].inconsistency_ratio
        )

    def test_reliable_removal_improves_on_explicit_removal(self, params):
        solutions = solve_all(params)
        assert (
            solutions[Protocol.SS_RTR].inconsistency_ratio
            < solutions[Protocol.SS_ER].inconsistency_ratio
        )

    def test_ss_rtr_comparable_to_hs(self, params):
        solutions = solve_all(params)
        rtr = solutions[Protocol.SS_RTR].inconsistency_ratio
        hs = solutions[Protocol.HS].inconsistency_ratio
        assert rtr == pytest.approx(hs, rel=0.10)

    def test_hs_cheapest_in_messages(self, params):
        solutions = solve_all(params)
        hs_rate = solutions[Protocol.HS].normalized_message_rate
        for protocol in Protocol.soft_state_family():
            assert hs_rate < solutions[protocol].normalized_message_rate

    def test_reliability_costs_messages(self, params):
        solutions = solve_all(params)
        assert (
            solutions[Protocol.SS_RT].normalized_message_rate
            > solutions[Protocol.SS].normalized_message_rate
        )

    def test_explicit_removal_nearly_free_for_long_sessions(self, params):
        solutions = solve_all(params)
        ss = solutions[Protocol.SS].normalized_message_rate
        er = solutions[Protocol.SS_ER].normalized_message_rate
        assert (er - ss) / ss < 0.02

    def test_short_sessions_group_by_removal_mechanism(self, params):
        short = params.replace(removal_rate=1.0 / 30.0)
        solutions = solve_all(short)
        inconsistency = {p: solutions[p].inconsistency_ratio for p in Protocol}
        # Without explicit removal: SS ~ SS+RT, both far above SS+ER.
        assert inconsistency[Protocol.SS] == pytest.approx(
            inconsistency[Protocol.SS_RT], rel=0.15
        )
        assert inconsistency[Protocol.SS_ER] < 0.25 * inconsistency[Protocol.SS]
        # With reliable removal: SS+RTR ~ HS, below SS+ER.
        assert inconsistency[Protocol.SS_RTR] < inconsistency[Protocol.SS_ER]

    def test_long_sessions_group_by_trigger_reliability(self, params):
        long = params.replace(removal_rate=1.0 / 50_000.0)
        solutions = solve_all(long)
        inconsistency = {p: solutions[p].inconsistency_ratio for p in Protocol}
        reliable = {Protocol.SS_RT, Protocol.SS_RTR, Protocol.HS}
        worst_reliable = max(inconsistency[p] for p in reliable)
        best_unreliable = min(inconsistency[p] for p in Protocol if p not in reliable)
        assert worst_reliable < best_unreliable


class TestParameterResponses:
    @given(loss=st.floats(0.0, 0.4))
    @settings(max_examples=25, deadline=None)
    def test_inconsistency_valid_across_loss(self, loss):
        params = kazaa_defaults().replace(loss_rate=loss)
        for protocol in Protocol:
            solution = SingleHopModel(protocol, params).solve()
            assert 0.0 <= solution.inconsistency_ratio <= 1.0

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_increases_with_loss(self, protocol, params):
        low = SingleHopModel(protocol, params.replace(loss_rate=0.01)).solve()
        high = SingleHopModel(protocol, params.replace(loss_rate=0.25)).solve()
        assert high.inconsistency_ratio > low.inconsistency_ratio

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_increases_with_delay(self, protocol, params):
        low = SingleHopModel(protocol, params.replace(delay=0.01)).solve()
        high = SingleHopModel(
            protocol, params.replace(delay=0.5, retransmission_interval=2.0)
        ).solve()
        assert high.inconsistency_ratio > low.inconsistency_ratio

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_both_metrics_decrease_with_session_length(self, protocol, params):
        short = SingleHopModel(protocol, params.replace(removal_rate=1 / 30)).solve()
        long = SingleHopModel(protocol, params.replace(removal_rate=1 / 3000)).solve()
        assert long.inconsistency_ratio < short.inconsistency_ratio
        assert long.normalized_message_rate < short.normalized_message_rate

    @given(
        loss=st.floats(0.0, 0.3),
        session=st.floats(20.0, 20_000.0),
        refresh=st.floats(0.5, 60.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_model_always_solvable(self, loss, session, refresh):
        params = kazaa_defaults().replace(
            loss_rate=loss, removal_rate=1.0 / session
        ).with_coupled_timers(refresh)
        for protocol in Protocol:
            solution = SingleHopModel(protocol, params).solve()
            assert 0.0 <= solution.inconsistency_ratio <= 1.0
            assert solution.message_rate >= 0.0
            assert solution.expected_receiver_lifetime > 0.0
