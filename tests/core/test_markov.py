"""Tests for the CTMC toolkit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.markov import ContinuousTimeMarkovChain


def two_state_chain(up_rate=2.0, down_rate=3.0):
    """Classic on/off chain with known stationary distribution."""
    return ContinuousTimeMarkovChain(
        ["on", "off"],
        {("on", "off"): down_rate, ("off", "on"): up_rate},
    )


class TestConstruction:
    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain([], {})

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a", "a"], {})

    def test_unknown_state_in_rates_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a"], {("a", "b"): 1.0})

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a", "b"], {("a", "a"): 1.0})

    @pytest.mark.parametrize("rate", [-1.0, float("nan"), float("inf")])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): rate})

    def test_zero_rates_dropped(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 0.0})
        assert chain.rates == {}
        assert chain.rate("a", "b") == 0.0


class TestGeneratorMatrix:
    def test_rows_sum_to_zero(self):
        chain = two_state_chain()
        q = chain.generator_matrix()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_off_diagonal_rates(self):
        chain = two_state_chain(up_rate=2.0, down_rate=3.0)
        q = chain.generator_matrix()
        assert q[0, 1] == 3.0  # on -> off
        assert q[1, 0] == 2.0  # off -> on
        assert q[0, 0] == -3.0


class TestStationaryDistribution:
    def test_two_state_known_result(self):
        chain = two_state_chain(up_rate=2.0, down_rate=3.0)
        pi = chain.stationary_distribution()
        # pi_on * 3 = pi_off * 2 -> pi_on = 2/5
        assert pi["on"] == pytest.approx(0.4)
        assert pi["off"] == pytest.approx(0.6)

    def test_sums_to_one(self):
        pi = two_state_chain().stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_birth_death_chain(self):
        # M/M/1/2 queue: lambda = 1, mu = 2 -> pi_k ~ (1/2)^k
        chain = ContinuousTimeMarkovChain(
            [0, 1, 2],
            {(0, 1): 1.0, (1, 2): 1.0, (1, 0): 2.0, (2, 1): 2.0},
        )
        pi = chain.stationary_distribution()
        total = 1 + 0.5 + 0.25
        assert pi[0] == pytest.approx(1 / total)
        assert pi[1] == pytest.approx(0.5 / total)
        assert pi[2] == pytest.approx(0.25 / total)

    def test_transient_state_gets_zero(self):
        chain = ContinuousTimeMarkovChain(
            ["t", "a", "b"],
            {("t", "a"): 1.0, ("a", "b"): 1.0, ("b", "a"): 1.0},
        )
        pi = chain.stationary_distribution()
        assert pi["t"] == pytest.approx(0.0, abs=1e-12)
        assert pi["a"] == pytest.approx(0.5)

    def test_disconnected_chain_raises(self):
        chain = ContinuousTimeMarkovChain(
            ["a", "b", "c", "d"],
            {("a", "b"): 1.0, ("b", "a"): 1.0, ("c", "d"): 1.0, ("d", "c"): 1.0},
        )
        with pytest.raises(ValueError):
            chain.stationary_distribution()

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_irreducible_chain_properties(self, seed, n):
        rng = np.random.default_rng(seed)
        states = list(range(n))
        rates = {}
        # A ring guarantees irreducibility; extra random edges on top.
        for i in states:
            rates[(i, (i + 1) % n)] = float(rng.uniform(0.1, 5.0))
        for _ in range(n):
            i, j = rng.integers(0, n, size=2)
            if i != j:
                rates[(int(i), int(j))] = float(rng.uniform(0.1, 5.0))
        chain = ContinuousTimeMarkovChain(states, rates)
        pi = chain.stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)
        assert all(p >= 0.0 for p in pi.values())
        # Verify pi Q = 0 numerically.
        q = chain.generator_matrix()
        vec = np.array([pi[s] for s in states])
        assert np.allclose(vec @ q, 0.0, atol=1e-8)


class TestAbsorption:
    def test_single_step_absorption_time(self):
        chain = ContinuousTimeMarkovChain(["t", "a"], {("t", "a"): 4.0})
        assert chain.mean_time_to_absorption("t", ["a"]) == pytest.approx(0.25)

    def test_two_step_chain(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "m", "a"], {("s", "m"): 1.0, ("m", "a"): 2.0}
        )
        assert chain.mean_time_to_absorption("s", ["a"]) == pytest.approx(1.5)

    def test_start_in_absorbing_state_is_zero(self):
        chain = ContinuousTimeMarkovChain(["t", "a"], {("t", "a"): 1.0})
        assert chain.mean_time_to_absorption("a", ["a"]) == 0.0

    def test_geometric_retries(self):
        # From s: rate 1 to a, rate 3 back to s via loop state.
        chain = ContinuousTimeMarkovChain(
            ["s", "loop", "a"],
            {("s", "a"): 1.0, ("s", "loop"): 3.0, ("loop", "s"): 2.0},
        )
        # E[T_s] = 1/4 + (3/4)(E[T_loop] + ...); solve: t_s = 0.25 + 0.75*(0.5 + t_s)
        expected = (0.25 + 0.75 * 0.5) / 0.25
        assert chain.mean_time_to_absorption("s", ["a"]) == pytest.approx(expected)

    def test_unreachable_absorption_raises(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "o", "a"], {("s", "o"): 1.0, ("o", "s"): 1.0}
        )
        with pytest.raises(ValueError):
            chain.mean_time_to_absorption("s", ["a"])

    def test_no_absorbing_states_rejected(self):
        chain = two_state_chain()
        with pytest.raises(ValueError):
            chain.mean_time_to_absorption("on", [])

    def test_unknown_absorbing_state_rejected(self):
        chain = two_state_chain()
        with pytest.raises(ValueError):
            chain.mean_time_to_absorption("on", ["nope"])

    def test_flow_into_absorbing_states(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "a", "b"], {("s", "a"): 1.5, ("s", "b"): 0.5}
        )
        flows = chain.absorption_probability_flow(["a", "b"])
        assert flows == {"a": 1.5, "b": 0.5}


class TestMergeStates:
    def test_merge_redirects_incoming(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "x", "end"],
            {("s", "x"): 1.0, ("x", "end"): 2.0},
        )
        merged = chain.merge_states("end", "s")
        assert "end" not in merged.states
        assert merged.rate("x", "s") == 2.0

    def test_merge_drops_outgoing_of_merged(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "end"],
            {("s", "end"): 1.0, ("end", "s"): 5.0},
        )
        merged = chain.merge_states("end", "s")
        assert merged.rates == {}

    def test_merge_preserves_total_rate_on_parallel_edges(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "t", "end"],
            {("t", "end"): 1.0, ("t", "s"): 2.0, ("s", "t"): 1.0},
        )
        merged = chain.merge_states("end", "s")
        assert merged.rate("t", "s") == pytest.approx(3.0)

    def test_merge_into_self_rejected(self):
        with pytest.raises(ValueError):
            two_state_chain().merge_states("on", "on")

    def test_merge_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            two_state_chain().merge_states("zzz", "on")

    def test_merged_chain_is_recurrent(self):
        chain = ContinuousTimeMarkovChain(
            ["s", "x", "end"],
            {("s", "x"): 1.0, ("x", "end"): 1.0},
        )
        pi = chain.merge_states("end", "s").stationary_distribution()
        assert pi["s"] == pytest.approx(0.5)
        assert pi["x"] == pytest.approx(0.5)


class TestUtilities:
    def test_holding_time(self):
        chain = two_state_chain(up_rate=2.0, down_rate=4.0)
        assert chain.holding_time("on") == pytest.approx(0.25)
        assert chain.holding_time("off") == pytest.approx(0.5)

    def test_holding_time_no_exit_is_inf(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        assert chain.holding_time("b") == float("inf")

    def test_describe_lists_transitions(self):
        text = two_state_chain().describe()
        assert "2 states" in text
        assert "'on'" in text and "'off'" in text
