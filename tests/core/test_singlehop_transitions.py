"""Tests that the generated chain matches Table I, row by row."""

from __future__ import annotations

import pytest

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.core.singlehop.states import SingleHopState as S
from repro.core.singlehop.transitions import (
    build_transition_rates,
    effective_false_removal_rate,
    state_space,
)

PARAMS = SignalingParameters(
    loss_rate=0.1,
    delay=0.05,
    update_rate=0.02,
    removal_rate=0.001,
    refresh_interval=4.0,
    timeout_interval=12.0,
    retransmission_interval=0.5,
    external_false_signal_rate=3e-4,
)

P = PARAMS.loss_rate
D = PARAMS.delay
R = PARAMS.refresh_interval
T = PARAMS.timeout_interval
K = PARAMS.retransmission_interval


def rate(protocol, origin, destination):
    return build_transition_rates(protocol, PARAMS).get((origin, destination), 0.0)


class TestCommonRows:
    """Rows 1-2 of Table I are identical across the five protocols."""

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_fast_path_loss(self, protocol):
        assert rate(protocol, S.S10_FAST, S.S10_SLOW) == pytest.approx(P / D)
        assert rate(protocol, S.IC_FAST, S.IC_SLOW) == pytest.approx(P / D)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_fast_path_success(self, protocol):
        assert rate(protocol, S.S10_FAST, S.CONSISTENT) == pytest.approx((1 - P) / D)
        assert rate(protocol, S.IC_FAST, S.CONSISTENT) == pytest.approx((1 - P) / D)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_update_transitions(self, protocol):
        lam_u = PARAMS.update_rate
        assert rate(protocol, S.CONSISTENT, S.IC_FAST) == pytest.approx(lam_u)
        assert rate(protocol, S.S10_SLOW, S.S10_FAST) == pytest.approx(lam_u)
        assert rate(protocol, S.IC_SLOW, S.IC_FAST) == pytest.approx(lam_u)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_removal_transitions(self, protocol):
        mu_r = PARAMS.removal_rate
        assert rate(protocol, S.S10_SLOW, S.ABSORBED) == pytest.approx(mu_r)
        assert rate(protocol, S.CONSISTENT, S.S01_FAST) == pytest.approx(mu_r)
        assert rate(protocol, S.IC_SLOW, S.S01_FAST) == pytest.approx(mu_r)


class TestRow3SlowPathRecovery:
    def test_ss_and_ss_er_refresh_only(self):
        for protocol in (Protocol.SS, Protocol.SS_ER):
            assert rate(protocol, S.S10_SLOW, S.CONSISTENT) == pytest.approx((1 - P) / R)
            assert rate(protocol, S.IC_SLOW, S.CONSISTENT) == pytest.approx((1 - P) / R)

    def test_reliable_trigger_adds_retransmission(self):
        expected = (1.0 / R + 1.0 / K) * (1 - P)
        for protocol in (Protocol.SS_RT, Protocol.SS_RTR):
            assert rate(protocol, S.S10_SLOW, S.CONSISTENT) == pytest.approx(expected)

    def test_hs_retransmission_only(self):
        assert rate(Protocol.HS, S.S10_SLOW, S.CONSISTENT) == pytest.approx((1 - P) / K)


class TestRows4to6OrphanRemoval:
    def test_row4_removal_loss(self):
        for protocol in (Protocol.SS_ER, Protocol.SS_RTR, Protocol.HS):
            assert rate(protocol, S.S01_FAST, S.S01_SLOW) == pytest.approx(P / D)
        for protocol in (Protocol.SS, Protocol.SS_RT):
            assert rate(protocol, S.S01_FAST, S.S01_SLOW) == 0.0

    def test_row5_first_chance_removal(self):
        for protocol in (Protocol.SS, Protocol.SS_RT):
            assert rate(protocol, S.S01_FAST, S.ABSORBED) == pytest.approx(1.0 / T)
        for protocol in (Protocol.SS_ER, Protocol.SS_RTR, Protocol.HS):
            assert rate(protocol, S.S01_FAST, S.ABSORBED) == pytest.approx((1 - P) / D)

    def test_row6_lost_removal_recovery(self):
        assert rate(Protocol.SS_ER, S.S01_SLOW, S.ABSORBED) == pytest.approx(1.0 / T)
        assert rate(Protocol.SS_RTR, S.S01_SLOW, S.ABSORBED) == pytest.approx(
            1.0 / T + (1 - P) / K
        )
        assert rate(Protocol.HS, S.S01_SLOW, S.ABSORBED) == pytest.approx((1 - P) / K)


class TestFalseRemoval:
    def test_soft_state_rate(self):
        expected = (P ** (T / R)) / T
        for protocol in Protocol.soft_state_family():
            assert effective_false_removal_rate(protocol, PARAMS) == pytest.approx(expected)
            assert rate(protocol, S.CONSISTENT, S.S10_SLOW) == pytest.approx(expected)
            assert rate(protocol, S.IC_SLOW, S.S10_SLOW) == pytest.approx(expected)

    def test_hs_uses_external_rate(self):
        assert effective_false_removal_rate(Protocol.HS, PARAMS) == pytest.approx(3e-4)
        assert rate(Protocol.HS, S.CONSISTENT, S.S10_SLOW) == pytest.approx(3e-4)


class TestStateSpace:
    def test_s01_slow_only_with_explicit_removal(self):
        for protocol in Protocol:
            has_slow = S.S01_SLOW in state_space(protocol)
            assert has_slow == protocol.explicit_removal

    def test_eight_or_seven_states(self):
        assert len(state_space(Protocol.SS)) == 7
        assert len(state_space(Protocol.SS_ER)) == 8

    def test_no_transition_references_missing_state(self):
        for protocol in Protocol:
            states = set(state_space(protocol))
            for origin, destination in build_transition_rates(protocol, PARAMS):
                assert origin in states
                assert destination in states

    def test_serialization_no_removal_from_fast_states(self):
        """Events are serialized: no removal while a message is in flight."""
        for protocol in Protocol:
            rates = build_transition_rates(protocol, PARAMS)
            assert (S.S10_FAST, S.S01_FAST) not in rates
            assert (S.IC_FAST, S.S01_FAST) not in rates
            assert (S.S10_FAST, S.ABSORBED) not in rates

    def test_no_update_from_consistent_fast_path(self):
        """The model serializes updates too: no IC1 -> (1,0)1 style jumps."""
        for protocol in Protocol:
            rates = build_transition_rates(protocol, PARAMS)
            assert (S.IC_FAST, S.S10_FAST) not in rates
