"""Tests for the multi-hop analytic model (§III-B, eqs. 9-17)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multihop import (
    HopState,
    MultiHopModel,
    RECOVERY,
    expected_link_crossings,
    first_timeout_rate,
    multihop_state_space,
    slow_path_recovery_rate,
    solve_all_multihop,
)
from repro.core.parameters import MultiHopParameters, reservation_defaults
from repro.core.protocols import Protocol


class TestStateSpace:
    def test_counts(self):
        # N fast states 0..N, N slow states 0..N-1.
        assert len(multihop_state_space(5, with_recovery=False)) == 11
        assert len(multihop_state_space(5, with_recovery=True)) == 12

    def test_no_slow_top_state(self):
        states = multihop_state_space(4, with_recovery=False)
        assert HopState(4, False) in states
        assert HopState(4, True) not in states

    def test_recovery_present_only_when_requested(self):
        assert RECOVERY in multihop_state_space(3, with_recovery=True)
        assert RECOVERY not in multihop_state_space(3, with_recovery=False)

    def test_invalid_hops_rejected(self):
        with pytest.raises(ValueError):
            multihop_state_space(0, with_recovery=False)

    def test_negative_consistent_hops_rejected(self):
        with pytest.raises(ValueError):
            HopState(-1, False)


class TestRates:
    def test_slow_path_recovery_ss_decays_with_depth(self, multihop_params):
        shallow = slow_path_recovery_rate(Protocol.SS, multihop_params, 1)
        deep = slow_path_recovery_rate(Protocol.SS, multihop_params, 5)
        assert deep < shallow
        p, r = multihop_params.loss_rate, multihop_params.refresh_interval
        assert shallow == pytest.approx((1 - p) / r)
        assert deep == pytest.approx(((1 - p) ** 5) / r)

    def test_slow_path_recovery_rt_adds_hop_retransmission(self, multihop_params):
        p = multihop_params.loss_rate
        k = multihop_params.retransmission_interval
        ss = slow_path_recovery_rate(Protocol.SS, multihop_params, 3)
        rt = slow_path_recovery_rate(Protocol.SS_RT, multihop_params, 3)
        assert rt == pytest.approx(ss + (1 - p) / k)

    def test_slow_path_recovery_hs_depth_independent(self, multihop_params):
        rates = {
            i: slow_path_recovery_rate(Protocol.HS, multihop_params, i)
            for i in (1, 3, 5)
        }
        assert len(set(rates.values())) == 1

    def test_unsupported_protocol_rejected(self, multihop_params):
        with pytest.raises(ValueError):
            slow_path_recovery_rate(Protocol.SS_ER, multihop_params, 1)
        with pytest.raises(ValueError):
            MultiHopModel(Protocol.SS_RTR, multihop_params)

    def test_first_timeout_rates_telescope(self, multihop_params):
        """Summing eq. 9 over targets gives the total timeout rate."""
        p = multihop_params.loss_rate
        t = multihop_params.timeout_interval
        exponent = t / multihop_params.refresh_interval
        i = 4
        total = sum(first_timeout_rate(multihop_params, j) for j in range(i))
        expected = ((1 - (1 - p) ** i) ** exponent) / t
        assert total == pytest.approx(expected)

    def test_first_timeout_rate_zero_loss(self):
        params = reservation_defaults().replace(loss_rate=0.0, hops=5)
        assert first_timeout_rate(params, 2) == 0.0

    def test_first_timeout_rate_increases_with_distance(self, multihop_params):
        # "State timeout is more likely to happen at the receivers far
        # (more hops away) from the sender" (paper, Fig. 17 discussion):
        # a refresh must cross more lossy links to keep a deep hop alive.
        assert first_timeout_rate(multihop_params, 4) > first_timeout_rate(
            multihop_params, 0
        )


class TestLinkCrossings:
    def test_zero_loss_crosses_all_links(self):
        params = reservation_defaults().replace(loss_rate=0.0, hops=7)
        assert expected_link_crossings(params) == 7.0

    def test_formula(self):
        params = reservation_defaults().replace(loss_rate=0.1, hops=3)
        expected = (1 - 0.9**3) / 0.1
        assert expected_link_crossings(params) == pytest.approx(expected)

    def test_matches_survival_sum(self):
        params = reservation_defaults().replace(loss_rate=0.05, hops=10)
        by_sum = sum((1 - 0.05) ** (k - 1) for k in range(1, 11))
        assert expected_link_crossings(params) == pytest.approx(by_sum)


class TestSolutions:
    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_stationary_sums_to_one(self, protocol, multihop_params):
        solution = MultiHopModel(protocol, multihop_params).solve()
        assert sum(solution.stationary.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_inconsistency_matches_eq12(self, protocol, multihop_params):
        solution = MultiHopModel(protocol, multihop_params).solve()
        top = solution.stationary[HopState(multihop_params.hops, False)]
        assert solution.inconsistency_ratio == pytest.approx(1.0 - top)

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_hop_profile_monotone(self, protocol, multihop_params):
        profile = MultiHopModel(protocol, multihop_params).solve().hop_profile()
        assert all(b >= a for a, b in zip(profile, profile[1:]))

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_last_hop_equals_overall(self, protocol, multihop_params):
        # Hop N is inconsistent in every state except (N, fast) and the
        # recovery state is counted in both; so hop-N inconsistency
        # equals the overall ratio.
        solution = MultiHopModel(protocol, multihop_params).solve()
        assert solution.hop_inconsistency(multihop_params.hops) == pytest.approx(
            solution.inconsistency_ratio
        )

    def test_hop_bounds_checked(self, multihop_params):
        solution = MultiHopModel(Protocol.SS, multihop_params).solve()
        with pytest.raises(ValueError):
            solution.hop_inconsistency(0)
        with pytest.raises(ValueError):
            solution.hop_inconsistency(multihop_params.hops + 1)

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_message_rate_positive(self, protocol, multihop_params):
        solution = MultiHopModel(protocol, multihop_params).solve()
        assert solution.message_rate > 0.0

    def test_hs_breakdown_has_no_refreshes(self, multihop_params):
        solution = MultiHopModel(Protocol.HS, multihop_params).solve()
        assert solution.message_breakdown["refresh_hops"] == 0.0
        assert solution.message_breakdown["recovery_traffic"] >= 0.0

    def test_ss_breakdown_has_no_acks(self, multihop_params):
        solution = MultiHopModel(Protocol.SS, multihop_params).solve()
        assert solution.message_breakdown["acks"] == 0.0
        assert solution.message_breakdown["retransmissions"] == 0.0
        assert solution.message_breakdown["refresh_hops"] > 0.0

    def test_integrated_cost(self, multihop_params):
        solution = MultiHopModel(Protocol.SS, multihop_params).solve()
        expected = 10.0 * solution.inconsistency_ratio + solution.message_rate
        assert solution.integrated_cost(10.0) == pytest.approx(expected)
        with pytest.raises(ValueError):
            solution.integrated_cost(-2.0)


class TestPaperClaims:
    """Qualitative multi-hop findings (Figs. 17-18)."""

    def test_inconsistency_increases_with_hops(self):
        base = reservation_defaults()
        for protocol in Protocol.multihop_family():
            values = [
                MultiHopModel(protocol, base.replace(hops=n)).solve().inconsistency_ratio
                for n in (2, 5, 10, 20)
            ]
            assert values == sorted(values)

    def test_message_rate_increases_with_hops(self):
        base = reservation_defaults()
        for protocol in Protocol.multihop_family():
            values = [
                MultiHopModel(protocol, base.replace(hops=n)).solve().message_rate
                for n in (2, 5, 10, 20)
            ]
            assert values == sorted(values)

    def test_rt_matches_hs_consistency(self):
        solutions = solve_all_multihop(reservation_defaults())
        rt = solutions[Protocol.SS_RT].inconsistency_ratio
        hs = solutions[Protocol.HS].inconsistency_ratio
        assert rt == pytest.approx(hs, rel=0.15)
        assert hs <= rt  # HS slightly ahead (Fig. 17 discussion)

    def test_ss_most_sensitive_to_path_length(self):
        base = reservation_defaults()
        growth = {}
        for protocol in Protocol.multihop_family():
            short = MultiHopModel(protocol, base.replace(hops=2)).solve()
            long = MultiHopModel(protocol, base.replace(hops=20)).solve()
            growth[protocol] = long.inconsistency_ratio - short.inconsistency_ratio
        assert growth[Protocol.SS] > growth[Protocol.SS_RT]
        assert growth[Protocol.SS] > growth[Protocol.HS]

    def test_rt_overhead_close_to_ss(self):
        solutions = solve_all_multihop(reservation_defaults())
        ss = solutions[Protocol.SS].message_rate
        rt = solutions[Protocol.SS_RT].message_rate
        assert rt > ss  # reliability costs something...
        assert (rt - ss) / ss < 0.25  # ...but little (Fig. 18b)

    def test_hs_cheapest(self):
        solutions = solve_all_multihop(reservation_defaults())
        assert solutions[Protocol.HS].message_rate < solutions[Protocol.SS].message_rate

    @given(
        hops=st.integers(1, 12),
        loss=st.floats(0.0, 0.2),
        refresh=st.floats(1.0, 30.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_model_always_solvable(self, hops, loss, refresh):
        params = MultiHopParameters(hops=hops, loss_rate=loss).with_coupled_timers(refresh)
        for protocol in Protocol.multihop_family():
            solution = MultiHopModel(protocol, params).solve()
            assert 0.0 <= solution.inconsistency_ratio <= 1.0
            assert solution.message_rate >= 0.0
