"""Tests for the uniformization kernel against the dense expm oracle."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core.markov import SPARSE_STATE_THRESHOLD, ContinuousTimeMarkovChain
from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.core.multihop.model import MultiHopModel
from repro.core.uniformization import uniformized_transient


def _expm_oracle(chain: ContinuousTimeMarkovChain, initial: np.ndarray, times):
    generator = chain.generator_matrix()
    return np.array([initial @ expm(generator * t) for t in times])


def _start_vector(chain: ContinuousTimeMarkovChain, state) -> np.ndarray:
    vector = np.zeros(len(chain.states))
    vector[chain.states.index(state)] = 1.0
    return vector


class TestAgainstExpm:
    def test_single_hop_matches_to_1e10(self):
        model = SingleHopModel(Protocol.SS, kazaa_defaults())
        chain = model.recurrent_chain()
        initial = _start_vector(chain, chain.states[0])
        times = (0.0, 0.01, 0.1, 1.0, 5.0, 30.0, 120.0)
        result = uniformized_transient(chain, initial, times)
        oracle = _expm_oracle(chain, initial, times)
        assert np.max(np.abs(result.probabilities - oracle)) < 1e-10

    def test_all_protocols_match(self):
        for protocol in Protocol:
            chain = SingleHopModel(protocol, kazaa_defaults()).recurrent_chain()
            initial = _start_vector(chain, chain.states[0])
            result = uniformized_transient(chain, initial, (0.5, 10.0))
            oracle = _expm_oracle(chain, initial, (0.5, 10.0))
            assert np.max(np.abs(result.probabilities - oracle)) < 1e-10

    def test_sparse_chain_matches_oracle(self):
        # Past the crossover the kernel iterates on the CSR operator;
        # the dense oracle still fits in memory at this size.
        hops = (SPARSE_STATE_THRESHOLD - 2) // 2 + 5
        params = reservation_defaults().replace(hops=hops)
        chain = MultiHopModel(Protocol.SS, params).chain()
        assert len(chain.states) >= SPARSE_STATE_THRESHOLD
        initial = _start_vector(chain, chain.states[0])
        result = uniformized_transient(chain, initial, (0.1, 2.0))
        oracle = _expm_oracle(chain, initial, (0.1, 2.0))
        assert np.max(np.abs(result.probabilities - oracle)) < 1e-9


class TestKernelBehavior:
    def test_time_zero_is_exactly_initial(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 3.0})
        initial = np.array([0.25, 0.75])
        result = uniformized_transient(chain, initial, (0.0,))
        assert np.allclose(result.probabilities[0], initial, atol=1e-15)

    def test_rows_sum_to_one(self):
        chain = ContinuousTimeMarkovChain(
            ["a", "b", "c"], {("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "a"): 0.5}
        )
        result = uniformized_transient(
            chain, np.array([1.0, 0.0, 0.0]), (0.1, 1.0, 10.0, 100.0)
        )
        assert np.allclose(result.probabilities.sum(axis=1), 1.0, atol=1e-12)

    def test_steady_state_detection_exits_early(self):
        chain = ContinuousTimeMarkovChain(
            ["on", "off"], {("on", "off"): 3.0, ("off", "on"): 2.0}
        )
        result = uniformized_transient(chain, np.array([1.0, 0.0]), (1e6,))
        assert result.steady_state_detected
        # Without the early exit the series needs ~ Lambda*t = 3e6 terms.
        assert result.iterations < 10_000
        stationary = chain.stationary_distribution()
        assert result.probabilities[0][0] == pytest.approx(
            stationary["on"], abs=1e-9
        )

    def test_unsorted_and_repeated_grid_allowed(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 2.0})
        initial = np.array([1.0, 0.0])
        result = uniformized_transient(chain, initial, (5.0, 0.5, 5.0))
        assert np.allclose(result.probabilities[0], result.probabilities[2])
        oracle = _expm_oracle(chain, initial, (0.5,))
        assert np.allclose(result.probabilities[1], oracle[0], atol=1e-12)

    def test_rate_zero_chain_never_moves(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 0.0})
        initial = np.array([0.5, 0.5])
        result = uniformized_transient(chain, initial, (0.0, 7.0, 1e5))
        assert np.allclose(result.probabilities, initial)
        assert result.iterations == 0

    def test_empty_grid(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        result = uniformized_transient(chain, np.array([1.0, 0.0]), ())
        assert result.probabilities.shape == (0, 2)
        assert result.times == ()

    def test_negative_time_rejected(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        with pytest.raises(ValueError):
            uniformized_transient(chain, np.array([1.0, 0.0]), (-1.0,))

    def test_non_distribution_initial_rejected(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): 1.0})
        with pytest.raises(ValueError):
            uniformized_transient(chain, np.array([0.9, 0.9]), (1.0,))
        with pytest.raises(ValueError):
            uniformized_transient(chain, np.array([1.0]), (1.0,))
