"""Rooted-tree topology representation and shape constructors."""

import pytest

from repro.core.multihop.topology import Topology


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one edge"):
            Topology(())

    def test_rejects_forward_parent(self):
        # node 1 may only hang below the root.
        with pytest.raises(ValueError, match="parents must be existing"):
            Topology((1,))

    def test_rejects_negative_parent(self):
        with pytest.raises(ValueError, match="parents must be existing"):
            Topology((0, -1))

    def test_parents_coerced_to_ints(self):
        assert Topology((0.0, 1.0)).parents == (0, 1)


class TestStructure:
    def test_chain(self):
        chain = Topology.chain(4)
        assert chain.parents == (0, 1, 2, 3)
        assert chain.is_chain
        assert chain.num_edges == 4
        assert chain.num_nodes == 5
        assert chain.leaves() == (4,)
        assert [chain.depth(v) for v in range(5)] == [0, 1, 2, 3, 4]
        assert chain.max_depth == 4

    def test_star(self):
        star = Topology.star(3)
        assert star.parents == (0, 0, 0)
        assert not star.is_chain
        assert star.children(0) == (1, 2, 3)
        assert star.leaves() == (1, 2, 3)
        assert star.num_leaves == 3
        assert star.fanout(0) == 3
        assert star.max_depth == 1

    def test_kary_binary_depth_2(self):
        tree = Topology.kary(2, 2)
        assert tree.num_nodes == 7
        assert tree.children(0) == (1, 2)
        assert tree.children(1) == (3, 4)
        assert tree.children(2) == (5, 6)
        assert tree.leaves() == (3, 4, 5, 6)
        assert tree.depth(6) == 2

    def test_kary_unary_is_chain(self):
        assert Topology.kary(1, 5) == Topology.chain(5)

    def test_broom(self):
        broom = Topology.broom(2, 3)
        assert broom.parents == (0, 1, 2, 2, 2)
        assert broom.leaves() == (3, 4, 5)
        assert broom.max_depth == 3

    def test_skewed(self):
        skewed = Topology.skewed(3)
        assert skewed.parents == (0, 1, 1, 3, 3)
        assert skewed.max_depth == 3
        # Every internal backbone node has exactly fan-out 2.
        assert skewed.fanout(1) == 2
        assert skewed.fanout(3) == 2

    def test_skewed_depth_1_is_chain(self):
        assert Topology.skewed(1) == Topology.chain(1)

    def test_subtree(self):
        tree = Topology.kary(2, 2)
        assert tree.subtree(1) == (1, 3, 4)
        assert tree.subtree(0) == tuple(range(7))
        assert tree.subtree(6) == (6,)

    def test_parent_bounds(self):
        chain = Topology.chain(2)
        assert chain.parent(2) == 1
        with pytest.raises(ValueError):
            chain.parent(0)
        with pytest.raises(ValueError):
            chain.parent(3)

    def test_subtree_bounds(self):
        with pytest.raises(ValueError):
            Topology.chain(2).subtree(5)

    @pytest.mark.parametrize("factory", ["chain", "star", "kary", "broom", "skewed"])
    def test_constructors_reject_non_positive(self, factory):
        with pytest.raises(ValueError):
            if factory == "kary":
                Topology.kary(0, 2)
            elif factory == "broom":
                Topology.broom(1, 0)
            else:
                getattr(Topology, factory)(0)


class TestHashing:
    def test_equal_shapes_hash_equal(self):
        assert hash(Topology.chain(3)) == hash(Topology((0, 1, 2)))
        assert Topology.chain(3) == Topology((0, 1, 2))

    def test_usable_as_cache_key(self):
        table = {Topology.star(2): "star", Topology.chain(2): "chain"}
        assert table[Topology((0, 0))] == "star"
        assert table[Topology((0, 1))] == "chain"


class TestDescribe:
    def test_render_shows_every_node(self):
        text = Topology.kary(2, 2).describe()
        assert text.startswith("sender")
        for node in range(1, 7):
            assert f"node {node}" in text
