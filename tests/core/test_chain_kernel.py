"""The O(hops) block-Thomas chain kernel against the dense LU reference.

Property-based coverage: random protocols × hop counts × heterogeeous
loss/congestion profiles must agree with the per-point dense reference
to 1e-9 relative, the kernel must reject structurally invalid input
with real errors (not garbage output), and ``REPRO_TEMPLATES=0`` must
still bypass the kernel entirely.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.markov import SPARSE_STATE_THRESHOLD, batched_stationary_chain
from repro.core.multihop.heterogeneous import (
    HeterogeneousHop,
    HeterogeneousMultiHopModel,
)
from repro.core.multihop.model import MultiHopModel
from repro.core.parameters import MultiHopParameters
from repro.core.protocols import Protocol
from repro.core.templates import (
    CHAIN_BACKENDS,
    multihop_template,
    select_chain_backend,
    solve_heterogeneous_structured_tasks,
    solve_multihop_structured_tasks,
)
from repro.runtime import solvers

MULTIHOP = Protocol.multihop_family()

#: The satellite contract: block-Thomas vs dense LU within 1e-9.
RTOL = 1e-9
ATOL = 1e-12


def _kernel_kwargs(template, derived):
    """Slice one template's derived-feature rows into kernel arguments."""
    n = template.hops
    kwargs = {
        "update": derived[:, template._f_update],
        "advance": derived[:, template._f_advance : template._f_advance + n],
        "lose": derived[:, template._f_lose : template._f_lose + n],
        "recover": derived[:, template._f_recover : template._f_recover + n],
    }
    if template.protocol is Protocol.HS:
        kwargs["false_signal"] = derived[:, template._f_extra]
        kwargs["recovery_return"] = derived[:, template._f_extra + 1]
    else:
        kwargs["timeouts"] = derived[:, template._f_extra : template._f_extra + n]
    return kwargs


def _stationary_vector(template, stationary):
    return np.array([stationary[state] for state in template.states])


@st.composite
def chain_cases(draw):
    """A random (protocol, params, heterogeneous hop profile) case."""
    protocol = draw(st.sampled_from(MULTIHOP))
    hops = draw(st.integers(min_value=1, max_value=16))
    params = MultiHopParameters(
        hops=hops,
        loss_rate=draw(st.floats(0.001, 0.45)),
        delay=draw(st.floats(0.005, 0.25)),
        update_rate=draw(st.floats(0.001, 2.0)),
        refresh_interval=draw(st.floats(0.5, 30.0)),
        timeout_interval=draw(st.floats(1.0, 90.0)),
        retransmission_interval=draw(st.floats(0.05, 1.0)),
        external_false_signal_rate=draw(st.floats(1e-6, 0.1)),
    )
    profile = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.tuples(st.floats(0.001, 0.45), st.floats(0.005, 0.25)),
                min_size=hops,
                max_size=hops,
            ).map(
                lambda pairs: tuple(
                    HeterogeneousHop(loss_rate=loss, delay=delay)
                    for loss, delay in pairs
                )
            ),
        )
    )
    return protocol, params, profile


class TestKernelAgreesWithDenseLU:
    @settings(max_examples=60, deadline=None)
    @given(chain_cases())
    def test_property_agreement(self, case):
        protocol, params, profile = case
        template = multihop_template(protocol, params.hops)
        derived = template.derived_rows([(params, profile)])
        pi, bad = batched_stationary_chain(**_kernel_kwargs(template, derived))
        assert not bad.any()
        if profile is None:
            reference = MultiHopModel(protocol, params).solve()
        else:
            reference = HeterogeneousMultiHopModel(protocol, params, profile).solve()
        expected = _stationary_vector(template, reference.stationary)
        np.testing.assert_allclose(pi[0], expected, rtol=RTOL, atol=ATOL)

    def test_batched_points_match_per_point_solves(self):
        template = multihop_template(Protocol.SS, 5)
        points = [
            (MultiHopParameters(hops=5, loss_rate=loss), None)
            for loss in (0.01, 0.1, 0.3)
        ]
        derived = template.derived_rows(points)
        pi, bad = batched_stationary_chain(**_kernel_kwargs(template, derived))
        assert not bad.any()
        for k, (params, _) in enumerate(points):
            single = template.derived_rows([(params, None)])
            pi_one, _ = batched_stationary_chain(**_kernel_kwargs(template, single))
            np.testing.assert_array_equal(pi[k], pi_one[0])

    def test_structured_task_entry_points(self):
        params = MultiHopParameters(hops=7, loss_rate=0.08)
        profile = tuple(
            HeterogeneousHop(loss_rate=0.02 * (i + 1), delay=0.02) for i in range(7)
        )
        for protocol in MULTIHOP:
            reference = MultiHopModel(protocol, params).solve()
            structured = solve_multihop_structured_tasks([(protocol, params)])[0]
            assert structured.inconsistency_ratio == pytest.approx(
                reference.inconsistency_ratio, rel=RTOL, abs=ATOL
            )
            het_reference = HeterogeneousMultiHopModel(
                protocol, params, profile
            ).solve()
            het_structured = solve_heterogeneous_structured_tasks(
                [(protocol, params, profile)]
            )[0]
            assert het_structured.inconsistency_ratio == pytest.approx(
                het_reference.inconsistency_ratio, rel=RTOL, abs=ATOL
            )


class TestStructuredErrors:
    def _valid_kwargs(self, k=2, n=3):
        return {
            "update": np.full(k, 0.1),
            "advance": np.full((k, n), 5.0),
            "lose": np.full((k, n), 0.5),
            "recover": np.full((k, n), 1.0),
            "timeouts": np.full((k, n), 0.2),
        }

    def test_rejects_non_vector_update(self):
        kwargs = self._valid_kwargs()
        kwargs["update"] = np.full((2, 2), 0.1)
        with pytest.raises(ValueError, match=r"update must be \(K,\)"):
            batched_stationary_chain(**kwargs)

    def test_rejects_mismatched_batch(self):
        kwargs = self._valid_kwargs()
        kwargs["lose"] = np.full((3, 3), 0.5)
        with pytest.raises(ValueError, match="lose must be"):
            batched_stationary_chain(**kwargs)

    def test_rejects_mismatched_hops(self):
        kwargs = self._valid_kwargs()
        kwargs["recover"] = np.full((2, 4), 1.0)
        with pytest.raises(ValueError, match="disagree on hops"):
            batched_stationary_chain(**kwargs)

    def test_rejects_zero_hops(self):
        with pytest.raises(ValueError, match="at least one hop"):
            batched_stationary_chain(
                update=np.ones(1),
                advance=np.ones((1, 0)),
                lose=np.ones((1, 0)),
                recover=np.ones((1, 0)),
                timeouts=np.ones((1, 0)),
            )

    def test_rejects_neither_mode(self):
        kwargs = self._valid_kwargs()
        del kwargs["timeouts"]
        with pytest.raises(ValueError, match="not both or neither"):
            batched_stationary_chain(**kwargs)

    def test_rejects_both_modes(self):
        kwargs = self._valid_kwargs()
        kwargs["false_signal"] = np.full(2, 0.01)
        kwargs["recovery_return"] = np.full(2, 0.5)
        with pytest.raises(ValueError, match="not both or neither"):
            batched_stationary_chain(**kwargs)

    def test_rejects_half_of_hs_mode(self):
        kwargs = self._valid_kwargs()
        del kwargs["timeouts"]
        kwargs["false_signal"] = np.full(2, 0.01)
        with pytest.raises(ValueError, match="need both false_signal"):
            batched_stationary_chain(**kwargs)

    def test_rejects_wrong_timeout_shape(self):
        kwargs = self._valid_kwargs()
        kwargs["timeouts"] = np.full((2, 4), 0.2)
        with pytest.raises(ValueError, match="timeouts must be"):
            batched_stationary_chain(**kwargs)

    def test_degenerate_rates_marked_bad_not_garbage(self):
        # update=0 with no timeouts gives a zero tail drain: the point
        # must come back flagged, never as silently wrong mass.
        kwargs = self._valid_kwargs(k=2, n=3)
        kwargs["update"] = np.array([0.0, 0.1])
        kwargs["timeouts"] = np.zeros((2, 3))
        pi, bad = batched_stationary_chain(**kwargs)
        assert bad[0]
        assert not bad[1]
        assert np.all(np.isfinite(pi))

    def test_template_rejects_unknown_backend(self):
        template = multihop_template(Protocol.SS, 3)
        with pytest.raises(ValueError, match="chain backend"):
            template.solve_batch(
                [(MultiHopParameters(hops=3), None)], backend="thomas"
            )

    def test_solver_task_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="chain backend"):
            solvers.solve_multihop_batch(
                [(Protocol.SS, MultiHopParameters(hops=3), "thomas")]
            )


class TestBackendRouting:
    def test_select_prefers_exact_template_below_threshold(self):
        for protocol in MULTIHOP:
            assert select_chain_backend(protocol, 4) == "template"

    def test_select_routes_large_chains_to_structured(self):
        # 2N+1 (+1 for HS's RECOVERY state) reaches the sparse
        # threshold: the splu path was already tolerance-class there, so
        # the structured kernel trades like for like.
        threshold_hops = (SPARSE_STATE_THRESHOLD + 1) // 2
        for protocol in MULTIHOP:
            assert select_chain_backend(protocol, threshold_hops) == "structured"
        assert select_chain_backend(Protocol.HS, threshold_hops - 1) == "structured"
        assert select_chain_backend(Protocol.SS, threshold_hops - 1) == "template"

    def test_backends_tuple_contains_auto(self):
        assert set(CHAIN_BACKENDS) == {"auto", "template", "structured"}

    def test_auto_task_and_explicit_backend_share_cache_entry(self):
        params = MultiHopParameters(hops=200, loss_rate=0.0421)
        auto_key = solvers._multihop_key((Protocol.SS, params))
        explicit = solvers._multihop_key((Protocol.SS, params, "structured"))
        template = solvers._multihop_key((Protocol.SS, params, "template"))
        assert auto_key == explicit
        assert auto_key != template

    def test_mixed_backend_chunk_preserves_order(self):
        tasks = [
            (Protocol.SS, MultiHopParameters(hops=3, loss_rate=0.07), "template"),
            (Protocol.SS, MultiHopParameters(hops=3, loss_rate=0.07), "structured"),
            (Protocol.SS_RT, MultiHopParameters(hops=2, loss_rate=0.07)),
        ]
        solutions = solvers.solve_multihop_template_chunk(tasks)
        assert [s.protocol for s in solutions] == [t[0] for t in tasks]
        assert solutions[0].inconsistency_ratio == pytest.approx(
            solutions[1].inconsistency_ratio, rel=RTOL
        )


class TestTemplatesDisabledBypassesKernel:
    def test_repro_templates_0_never_touches_the_kernel(self, monkeypatch):
        # The escape hatch must route even explicitly-structured tasks
        # through the per-point reference models.
        monkeypatch.setenv("REPRO_TEMPLATES", "0")

        def _boom(*args, **kwargs):
            raise AssertionError("structured kernel used despite REPRO_TEMPLATES=0")

        monkeypatch.setattr(
            "repro.core.markov.batched_stationary_chain", _boom
        )
        monkeypatch.setattr(
            "repro.core.templates.batched_stationary_chain", _boom
        )
        params = MultiHopParameters(hops=130, loss_rate=0.0137)
        [solution] = solvers.solve_multihop_batch(
            [(Protocol.SS, params, "structured")]
        )
        reference = MultiHopModel(Protocol.SS, params).solve()
        assert solution.inconsistency_ratio == reference.inconsistency_ratio
        assert solution.stationary == reference.stationary
