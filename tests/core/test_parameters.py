"""Tests for the parameter dataclasses and paper defaults."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    MultiHopParameters,
    SignalingParameters,
    kazaa_defaults,
    reservation_defaults,
)


class TestSignalingParameters:
    def test_defaults_match_design_doc(self):
        params = kazaa_defaults()
        assert params.loss_rate == 0.02
        assert params.delay == 0.03
        assert params.update_rate == pytest.approx(1 / 20)
        assert params.mean_session_length == pytest.approx(1800.0)
        assert params.refresh_interval == 5.0
        assert params.timeout_interval == 15.0
        assert params.retransmission_interval == pytest.approx(0.12)
        assert params.external_false_signal_rate == pytest.approx(1e-4)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("loss_rate", -0.1),
            ("loss_rate", 1.5),
            ("delay", 0.0),
            ("refresh_interval", -1.0),
            ("timeout_interval", 0.0),
            ("retransmission_interval", 0.0),
            ("update_rate", -1.0),
            ("removal_rate", -0.5),
            ("external_false_signal_rate", -1e-9),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SignalingParameters(**{field: value})

    def test_false_removal_rate_formula(self):
        params = SignalingParameters(
            loss_rate=0.1, refresh_interval=5.0, timeout_interval=15.0
        )
        assert params.false_removal_rate == pytest.approx((0.1**3) / 15.0)

    def test_false_removal_rate_zero_loss(self):
        assert SignalingParameters(loss_rate=0.0).false_removal_rate == 0.0

    def test_false_removal_rate_decreases_with_timeout(self):
        short = SignalingParameters(timeout_interval=10.0)
        long = SignalingParameters(timeout_interval=30.0)
        assert long.false_removal_rate < short.false_removal_rate

    def test_replace_returns_new_instance(self):
        base = kazaa_defaults()
        changed = base.replace(loss_rate=0.1)
        assert changed.loss_rate == 0.1
        assert base.loss_rate == 0.02

    def test_with_coupled_timers(self):
        params = kazaa_defaults().with_coupled_timers(8.0)
        assert params.refresh_interval == 8.0
        assert params.timeout_interval == 24.0

    def test_with_coupled_timers_custom_multiple(self):
        params = kazaa_defaults().with_coupled_timers(4.0, timeout_multiple=2.0)
        assert params.timeout_interval == 8.0

    def test_infinite_session_when_removal_rate_zero(self):
        params = SignalingParameters(removal_rate=0.0)
        assert params.mean_session_length == float("inf")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            kazaa_defaults().loss_rate = 0.5  # type: ignore[misc]


class TestMultiHopParameters:
    def test_defaults_match_design_doc(self):
        params = reservation_defaults()
        assert params.hops == 20
        assert params.loss_rate == 0.02
        assert params.delay == 0.03
        assert params.update_rate == pytest.approx(1 / 60)
        assert params.external_false_signal_rate == pytest.approx(0.02**3)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("hops", 0),
            ("hops", -3),
            ("loss_rate", 1.5),
            ("delay", 0.0),
            ("update_rate", 0.0),
            ("refresh_interval", 0.0),
            ("timeout_interval", -2.0),
            ("retransmission_interval", 0.0),
            ("external_false_signal_rate", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            MultiHopParameters(**{field: value})

    def test_refresh_reach_probability(self):
        params = MultiHopParameters(loss_rate=0.1, hops=5)
        assert params.refresh_reach_probability(0) == 1.0
        assert params.refresh_reach_probability(2) == pytest.approx(0.81)

    def test_refresh_reach_probability_bounds(self):
        params = MultiHopParameters(hops=5)
        with pytest.raises(ValueError):
            params.refresh_reach_probability(6)
        with pytest.raises(ValueError):
            params.refresh_reach_probability(-1)

    def test_with_coupled_timers(self):
        params = reservation_defaults().with_coupled_timers(2.0)
        assert params.refresh_interval == 2.0
        assert params.timeout_interval == 6.0

    def test_replace(self):
        params = reservation_defaults().replace(hops=3)
        assert params.hops == 3
