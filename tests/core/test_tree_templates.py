"""Compiled tree templates: exact parity with the reference model.

Mirrors ``tests/core/test_templates.py`` for the tree family: the
template path must be **bit-identical** to the per-point dense
reference below the sparse crossover, tolerance-bounded above it, and
the runtime batch helpers must dedupe and order results exactly like
the chain families.
"""

import math

import pytest

from repro.core.multihop import Topology, TreeModel
from repro.core.templates import TreeTemplate, solve_tree_tasks, tree_template
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.runtime import global_cache, solve_tree_batch

MULTIHOP = Protocol.multihop_family()

SHAPES = (
    Topology.chain(3),
    Topology.star(3),
    Topology.kary(2, 2),
    Topology.skewed(3),
    Topology.broom(2, 3),
)

METRICS = (
    "inconsistency_ratio",
    "message_rate",
    "mean_leaf_inconsistency",
    "fanout_weighted_inconsistency",
)


def params_for(topology, **overrides):
    return reservation_defaults().replace(hops=topology.num_edges, **overrides)


@pytest.mark.parametrize("protocol", MULTIHOP, ids=lambda p: p.value)
@pytest.mark.parametrize("topology", SHAPES, ids=lambda t: str(t.parents))
def test_template_bit_identical_to_reference(protocol, topology):
    variants = [
        params_for(topology),
        params_for(topology, loss_rate=0.2),
        params_for(topology, loss_rate=0.0),
        params_for(topology).with_coupled_timers(1.0),
    ]
    references = [TreeModel(protocol, params, topology).solve() for params in variants]
    template_solutions = tree_template(protocol, topology).solve_batch(variants)
    for reference, solution in zip(references, template_solutions):
        assert list(reference.stationary.values()) == list(
            solution.stationary.values()
        )
        for metric in METRICS:
            assert getattr(reference, metric) == getattr(solution, metric)
        assert reference.message_breakdown == solution.message_breakdown


def test_template_memoized_per_protocol_and_topology():
    a = tree_template(Protocol.SS, Topology.star(2))
    b = tree_template(Protocol.SS, Topology.star(2))
    c = tree_template(Protocol.SS, Topology.chain(2))
    assert a is b
    assert a is not c


def test_template_structure_matches_reference_rates():
    topology = Topology.kary(2, 2)
    template = TreeTemplate(Protocol.SS, topology)
    params = params_for(topology)
    rates = template.edge_rates([params])[0]
    reference = TreeModel(Protocol.SS, params, topology).transition_rates()
    accumulated: dict[tuple, float] = {}
    for row, col, rate in zip(template.rows, template.cols, rates):
        if rate > 0.0:
            key = (template.states[row], template.states[col])
            accumulated[key] = accumulated.get(key, 0.0) + rate
    assert accumulated == reference


def test_sparse_crossover_within_tolerance():
    # star(6) has 729 states — above SPARSE_STATE_THRESHOLD, so the
    # template keeps its CSC pattern and splu agrees within tolerance.
    topology = Topology.star(6)
    params = params_for(topology)
    for protocol in MULTIHOP:
        reference = TreeModel(protocol, params, topology).solve()
        solution = solve_tree_tasks([(protocol, params, topology)])[0]
        for expected, observed in zip(
            reference.stationary.values(), solution.stationary.values()
        ):
            assert math.isclose(expected, observed, rel_tol=1e-8, abs_tol=1e-12)
        assert math.isclose(
            reference.inconsistency_ratio,
            solution.inconsistency_ratio,
            rel_tol=1e-8,
            abs_tol=1e-12,
        )


def test_solve_batch_rejects_hop_mismatch():
    template = tree_template(Protocol.SS, Topology.star(3))
    with pytest.raises(ValueError, match="template compiled"):
        template.solve_batch([reservation_defaults()])


def test_solve_batch_empty():
    assert tree_template(Protocol.SS, Topology.star(2)).solve_batch([]) == []


def test_solve_tree_tasks_preserves_task_order():
    star = Topology.star(2)
    chain = Topology.chain(2)
    params_star = params_for(star)
    params_chain = params_for(chain)
    tasks = [
        (Protocol.SS, params_star, star),
        (Protocol.HS, params_chain, chain),
        (Protocol.SS, params_chain, chain),
        (Protocol.HS, params_star, star),
    ]
    solutions = solve_tree_tasks(tasks)
    for (protocol, params, topology), solution in zip(tasks, solutions):
        assert solution.protocol is protocol
        assert solution.topology == topology
        assert solution.params == params


class TestRuntimeBatch:
    def test_batch_matches_reference_and_dedupes(self):
        topology = Topology.kary(2, 2)
        params = params_for(topology)
        tasks = [(p, params, topology) for p in MULTIHOP] * 2
        cache = global_cache()
        before = cache.stats()["misses"]
        solutions = solve_tree_batch(tasks)
        after = cache.stats()["misses"]
        # Repeated tasks are served from the dedupe pass, not recomputed.
        assert after - before <= len(MULTIHOP)
        for (protocol, task_params, task_topology), solution in zip(tasks, solutions):
            reference = TreeModel(protocol, task_params, task_topology).solve()
            assert reference.inconsistency_ratio == solution.inconsistency_ratio
            assert reference.message_rate == solution.message_rate

    def test_parallel_jobs_identical_to_serial(self):
        topology = Topology.skewed(3)
        variants = [
            (Protocol.SS, params_for(topology, loss_rate=rate), topology)
            for rate in (0.01, 0.05, 0.1, 0.15)
        ]
        serial = solve_tree_batch(variants)
        parallel = solve_tree_batch(variants, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.inconsistency_ratio == b.inconsistency_ratio
            assert a.message_rate == b.message_rate

    def test_topology_distinguishes_cache_entries(self):
        # Same (protocol, params) on different shapes with equal edge
        # counts must not collide in the memo cache.
        star = Topology.star(3)
        chain = Topology.chain(3)
        params = params_for(star)
        star_solution = solve_tree_batch([(Protocol.SS, params, star)])[0]
        chain_solution = solve_tree_batch([(Protocol.SS, params, chain)])[0]
        assert star_solution.inconsistency_ratio != chain_solution.inconsistency_ratio
