"""Fixtures for the reprolint test suite.

The linter lives in ``tools/`` (not on the installed ``repro`` path),
so the repo root goes on ``sys.path`` here.  ``mini_repo`` builds a
throwaway checkout-shaped tree from the snippet files in ``fixtures/``:
a tiny four-layer package plus its own layer manifest.  The RL004
cross-reference pair (entry points + parity registry) is seeded clean
by default, so RL004 only fires when a test swaps in a violating
variant.
"""

from __future__ import annotations

import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: Baseline mini repo: RL004 cross-references these two files on every
#: run, so they exist (and agree) unless a test overrides them.
_BASELINE = {
    "src/pkg/core/templates.py": "rl004_templates_clean.py",
    "src/pkg/validation/parity.py": "rl004_registry_clean.py",
}


@pytest.fixture
def mini_repo(tmp_path):
    """Factory: build a mini checkout from fixture snippets.

    ``files`` maps repo-relative destinations to snippet names under
    ``fixtures/``; entries override the baseline pair.
    """

    def build(files=None):
        root = tmp_path / "repo"
        layout = dict(_BASELINE)
        layout.update(files or {})
        for rel, fixture_name in layout.items():
            dest = root / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(FIXTURES / fixture_name, dest)
        shutil.copyfile(FIXTURES / "layers.toml", root / "layers.toml")
        return root

    return build


@pytest.fixture
def lint(mini_repo):
    """Factory: build a mini repo from snippets and lint its src tree."""
    from tools.reprolint.engine import run_lint
    from tools.reprolint.manifest import load_manifest

    def run(files=None, paths=None):
        root = mini_repo(files)
        manifest = load_manifest(root / "layers.toml")
        return run_lint(root, paths or [Path("src")], manifest)

    return run
