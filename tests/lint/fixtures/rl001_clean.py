"""RL001 fixture: a sim module importing only downward and sideways.

Placed at ``src/pkg/sim/engine.py``: core is a declared dependency and
same-layer relative imports are always allowed.
"""

from pkg.core import states

from .channel import Channel

__all__ = ["Channel", "states"]
