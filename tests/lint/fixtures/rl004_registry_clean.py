"""RL004 fixture: the parity registry, in sync with the entry points
of ``rl004_templates_clean.py``.  Placed at ``src/pkg/validation/parity.py``.
"""

PARITY_CLASSES: dict[str, str] = {
    "solve_dense": "exact",
    "batched_stationary": "tolerance",
}
