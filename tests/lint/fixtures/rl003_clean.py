"""RL003 fixture: the same shapes with the order pinned by sorted()."""


def enumerate_states(edges):
    reachable = {node for pair in edges for node in pair}
    out = []
    for node in sorted(reachable):
        out.append(node)
    out.extend(kind for kind in sorted({"fast", "slow"}))
    return out


def memo_key(table):
    return tuple(sorted(table.keys()))
