"""RL004 fixture: ``solve_sparse`` is a public entry point that the
parity registry does not know about."""


def solve_dense(params):
    return params


def batched_stationary(tasks):
    return list(tasks)


def solve_sparse(params):
    return params
