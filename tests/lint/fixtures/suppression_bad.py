"""Suppression-hygiene fixture: every way a suppression can rot.

Line by line: a suppression naming a rule that does not exist, an
unjustified suppression with nothing to suppress, and (for contrast)
one legitimate, justified, used suppression.
"""

import time

GOOD = 1  # reprolint: disable=RL099 -- no such rule
BAD = 2  # reprolint: disable=RL002


def stamp() -> float:
    return time.time()  # reprolint: disable=RL002 -- display-only timing
