"""RL005 fixture: unpicklable callables handed to the pool — a lambda
to ``parallel_map`` and a locally-defined function to ``submit``."""


def parallel_map(fn, items):
    return [fn(item) for item in items]


def run_all(tasks, pool):
    results = parallel_map(lambda task: task + 1, tasks)

    def local_worker(task):
        return task * 2

    futures = [pool.submit(local_worker, task) for task in tasks]
    return results, futures
