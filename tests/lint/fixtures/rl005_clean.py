"""RL005 fixture: a module-level worker pickles fine."""


def parallel_map(fn, items):
    return [fn(item) for item in items]


def worker(task):
    return task * 2


def run_all(tasks, pool):
    results = parallel_map(worker, tasks)
    futures = [pool.submit(worker, task) for task in tasks]
    return results, futures
