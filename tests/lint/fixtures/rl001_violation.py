"""RL001 fixture: a core module importing upward and the root facade.

Placed at ``src/pkg/core/upward.py``: three violations — the package
root facade, an absolute upward import, and a relative upward import.
"""

from pkg import PKG_VERSION
from pkg.experiments import driver

from ..experiments import driver as rel_driver

__all__ = ["PKG_VERSION", "driver", "rel_driver"]
