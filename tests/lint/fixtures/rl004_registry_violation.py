"""RL004 fixture: a registry that rotted — ``solve_dense`` claims an
unknown parity class and ``solve_retired`` no longer exists."""

PARITY_CLASSES: dict[str, str] = {
    "solve_dense": "approximate",
    "batched_stationary": "tolerance",
    "solve_retired": "exact",
}
