"""RL006 fixture: failures are recorded — broad handlers with real
bodies and narrow handlers pass."""

failures = []


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None


def probe(callback):
    try:
        callback()
    except Exception as error:
        failures.append(error)
        raise
