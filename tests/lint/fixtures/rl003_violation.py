"""RL003 fixture: unordered iteration in an order-critical module.

Placed at ``src/pkg/core/states.py`` (the path named in the fixture
manifest's ``[rules.RL003] modules``): a set-valued name, a set
literal, and a bare ``.keys()``.
"""


def enumerate_states(edges):
    reachable = {node for pair in edges for node in pair}
    out = []
    for node in reachable:
        out.append(node)
    out.extend(kind for kind in {"fast", "slow"})
    return out


def memo_key(table):
    return tuple(key for key in table.keys())
