"""RL004 fixture: solver entry points, all registered in the parity
registry (``rl004_registry_clean.py``).  Private helpers are exempt.

Placed at ``src/pkg/core/templates.py``; this pair is the mini repo's
baseline so RL004 has something consistent to cross-reference in every
test.
"""


def solve_dense(params):
    return params


def batched_stationary(tasks):
    return list(tasks)


def _solve_helper(params):
    return params
