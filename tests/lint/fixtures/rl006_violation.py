"""RL006 fixture: swallowed failures — a bare ``except:`` and broad
handlers whose bodies do nothing."""


def load(path):
    try:
        return open(path).read()
    except:  # noqa: E722
        return None


def probe(callback):
    try:
        callback()
    except Exception:
        pass
    try:
        callback()
    except (ValueError, BaseException):
        ...
