"""RL002 fixture: ambient entropy and wall-clock reads in the core.

Placed anywhere inside an RL002-scoped layer; every function below is
one banned pattern.
"""

import random
import time

import numpy


def draw() -> float:
    return random.random() + time.time()


def legacy(n: int):
    return numpy.random.rand(n)


def unseeded():
    return numpy.random.default_rng()
