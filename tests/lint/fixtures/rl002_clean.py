"""RL002 fixture: the sanctioned explicit-seeding idiom."""

import numpy


def generators(seed: int):
    root = numpy.random.SeedSequence(seed)
    return [numpy.random.default_rng(child) for child in root.spawn(2)]
