"""Suppression fixture: one RL002 finding, silenced with a justified
escape hatch on the finding's own line."""

import time


def stamp() -> float:
    return time.time()  # reprolint: disable=RL002 -- fixture: timing is display-only here
