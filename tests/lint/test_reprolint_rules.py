"""Per-rule coverage: at least one violating and one clean case each,
driven through the real engine over checkout-shaped mini repos."""

from __future__ import annotations


def by_rule(report, code):
    return [finding for finding in report.findings if finding.rule == code]


class TestRL001LayerContract:
    def test_upward_and_facade_imports_flagged(self, lint):
        report = lint({"src/pkg/core/upward.py": "rl001_violation.py"})
        findings = by_rule(report, "RL001")
        assert len(findings) == 3
        assert all(f.path == "src/pkg/core/upward.py" for f in findings)
        messages = " ".join(f.message for f in findings)
        assert "root facade" in messages
        assert "'experiments'" in messages

    def test_relative_upward_import_is_resolved(self, lint):
        report = lint({"src/pkg/core/upward.py": "rl001_violation.py"})
        relative = [
            f for f in by_rule(report, "RL001") if "from ..experiments" in f.message
        ]
        assert len(relative) == 1

    def test_downward_and_same_layer_imports_pass(self, lint):
        report = lint({"src/pkg/sim/engine.py": "rl001_clean.py"})
        assert report.passed


class TestRL002Determinism:
    def test_ambient_entropy_flagged(self, lint):
        report = lint({"src/pkg/core/noise.py": "rl002_violation.py"})
        findings = by_rule(report, "RL002")
        assert len(findings) == 5
        messages = " ".join(f.message for f in findings)
        assert "import random" in messages
        assert "time.time" in messages
        assert "legacy global-state numpy.random" in messages
        assert "default_rng() without a seed" in messages

    def test_explicit_seeding_passes(self, lint):
        report = lint({"src/pkg/core/seeded.py": "rl002_clean.py"})
        assert report.passed

    def test_out_of_scope_layers_are_exempt(self, lint):
        # experiments is not in [rules.RL002] layers; same code passes.
        report = lint({"src/pkg/experiments/noise.py": "rl002_violation.py"})
        assert not by_rule(report, "RL002")


class TestRL003CanonicalOrder:
    def test_unordered_iteration_flagged(self, lint):
        report = lint({"src/pkg/core/states.py": "rl003_violation.py"})
        findings = by_rule(report, "RL003")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "set expression" in messages
        assert "set-valued name" in messages
        assert "bare .keys()" in messages

    def test_sorted_iteration_passes(self, lint):
        report = lint({"src/pkg/core/states.py": "rl003_clean.py"})
        assert report.passed

    def test_only_configured_modules_in_scope(self, lint):
        # The same unordered code outside [rules.RL003] modules passes.
        report = lint({"src/pkg/core/other.py": "rl003_violation.py"})
        assert not by_rule(report, "RL003")


class TestRL004ParityRegistration:
    def test_unregistered_entry_point_flagged(self, lint):
        report = lint(
            {"src/pkg/core/templates.py": "rl004_templates_violation.py"}
        )
        findings = by_rule(report, "RL004")
        assert len(findings) == 1
        assert findings[0].path == "src/pkg/core/templates.py"
        assert "'solve_sparse'" in findings[0].message

    def test_stale_and_unknown_class_registrations_flagged(self, lint):
        report = lint(
            {"src/pkg/validation/parity.py": "rl004_registry_violation.py"}
        )
        findings = by_rule(report, "RL004")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "stale registration" in messages
        assert "'approximate'" in messages

    def test_registered_backends_pass(self, lint):
        assert lint().passed  # the baseline pair is in sync


class TestRL005WorkerSafety:
    def test_lambda_and_local_function_flagged(self, lint):
        report = lint({"src/pkg/experiments/driver.py": "rl005_violation.py"})
        findings = by_rule(report, "RL005")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "lambda passed to parallel_map()" in messages
        assert "'local_worker'" in messages

    def test_module_level_worker_passes(self, lint):
        report = lint({"src/pkg/experiments/driver.py": "rl005_clean.py"})
        assert report.passed


class TestRL006SilentFailure:
    def test_swallowed_exceptions_flagged(self, lint):
        report = lint({"src/pkg/core/loader.py": "rl006_violation.py"})
        findings = by_rule(report, "RL006")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "bare `except:`" in messages
        assert "`except Exception`" in messages
        assert "`except BaseException`" in messages

    def test_recorded_failures_pass(self, lint):
        report = lint({"src/pkg/core/loader.py": "rl006_clean.py"})
        assert report.passed

    def test_extra_paths_sweep_covers_tools(self, lint):
        # The file sits under tools/, outside the linted src tree; the
        # [rules.RL006] extra_paths sweep must still reach it.
        report = lint({"tools/helper.py": "rl006_violation.py"})
        findings = by_rule(report, "RL006")
        assert len(findings) == 3
        assert all(f.path == "tools/helper.py" for f in findings)

    def test_extra_paths_do_not_double_report(self, lint):
        # tools/ both named on the command line and in extra_paths:
        # each handler is still reported exactly once.
        from pathlib import Path

        report = lint(
            {"tools/helper.py": "rl006_violation.py"},
            paths=[Path("src"), Path("tools")],
        )
        assert len(by_rule(report, "RL006")) == 3
