"""Engine behavior: suppressions, suppression hygiene (RL000), and the
text/JSON report formats."""

from __future__ import annotations

import json


class TestSuppressions:
    def test_justified_suppression_silences_and_is_recorded(self, lint):
        report = lint({"src/pkg/core/noise.py": "suppressed.py"})
        assert report.passed
        assert len(report.suppressed) == 1
        finding, suppression = report.suppressed[0]
        assert finding.rule == "RL002"
        assert finding.line == suppression.line
        assert suppression.justification.startswith("fixture:")

    def test_suppression_hygiene_findings(self, lint):
        report = lint({"src/pkg/core/noise.py": "suppression_bad.py"})
        assert [f.rule for f in report.findings] == ["RL000", "RL000", "RL000"]
        messages = " ".join(f.message for f in report.findings)
        assert "unknown rule RL099" in messages
        assert "unused suppression of RL002" in messages
        assert "without a justification" in messages
        # The legitimate suppression still worked.
        assert len(report.suppressed) == 1


class TestReports:
    def test_json_report_schema(self, lint):
        report = lint({"src/pkg/core/noise.py": "rl002_violation.py"})
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == 1
        assert payload["tool"] == "reprolint"
        assert payload["passed"] is False
        assert payload["files_checked"] == report.files_checked
        assert {r["code"] for r in payload["rules"]} == {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
        }
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "message"}

    def test_json_suppressed_entries_carry_justification(self, lint):
        report = lint({"src/pkg/core/noise.py": "suppressed.py"})
        payload = json.loads(report.to_json())
        assert payload["passed"] is True
        (entry,) = payload["suppressed"]
        assert entry["rule"] == "RL002"
        assert entry["justification"].startswith("fixture:")

    def test_text_report_summary_line(self, lint):
        report = lint()
        assert report.passed
        assert report.to_text() == (
            "reprolint: 0 finding(s), 0 suppressed, 2 file(s) checked"
        )

    def test_text_report_renders_location_per_finding(self, lint):
        report = lint({"src/pkg/core/states.py": "rl003_violation.py"})
        first = report.to_text().splitlines()[0]
        assert first.startswith("src/pkg/core/states.py:")
        assert " RL003 " in first
