"""CLI exit codes, output formats, and the full-repo acceptance run."""

from __future__ import annotations

import json

from tools.reprolint import cli


def run_cli(root, *argv):
    return cli.main(
        [*argv, "--root", str(root), "--manifest", str(root / "layers.toml")]
    )


class TestExitCodes:
    def test_clean_run_exits_zero(self, mini_repo, capsys):
        root = mini_repo()
        assert run_cli(root, "src") == cli.EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, mini_repo, capsys):
        root = mini_repo({"src/pkg/core/noise.py": "rl002_violation.py"})
        assert run_cli(root, "src") == cli.EXIT_FINDINGS
        assert "RL002" in capsys.readouterr().out

    def test_missing_path_is_a_config_error(self, mini_repo, capsys):
        root = mini_repo()
        assert run_cli(root, "no-such-dir") == cli.EXIT_CONFIG
        assert "no such path" in capsys.readouterr().err

    def test_broken_manifest_is_a_config_error(self, tmp_path, capsys):
        bad = tmp_path / "layers.toml"
        bad.write_text("[manifest]\nschema = 99\n")
        assert cli.main(["--manifest", str(bad)]) == cli.EXIT_CONFIG
        assert "configuration error" in capsys.readouterr().err


class TestFormats:
    def test_json_format(self, mini_repo, capsys):
        root = mini_repo({"src/pkg/core/noise.py": "rl002_violation.py"})
        assert run_cli(root, "src", "--format", "json") == cli.EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["passed"] is False
        assert any(f["rule"] == "RL002" for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == cli.EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert code in out


class TestRealRepo:
    def test_src_repro_lints_clean(self, capsys):
        # The acceptance gate: the shipped tree against the shipped
        # manifest, exactly as CI runs it.
        assert cli.main(["src/repro", "--format", "json"]) == cli.EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["files_checked"] > 50
