"""Layer-manifest loading and validation, including the shipped
``tools/reprolint/layers.toml``."""

from __future__ import annotations

import pytest

from tools.reprolint.manifest import ManifestError, load_manifest

HEADER = '[manifest]\nschema = 1\npackage = "pkg"\nsource_root = "src/pkg"\n'


def write(tmp_path, body):
    path = tmp_path / "layers.toml"
    path.write_text(HEADER + body)
    return path


class TestShippedManifest:
    def test_loads_and_matches_the_real_package(self):
        manifest = load_manifest()
        assert manifest.package == "repro"
        assert manifest.source_root == "src/repro"
        names = manifest.layer_names()
        for expected in ("meta", "core", "sim", "runtime", "validation", "cli"):
            assert expected in names

    def test_edges_point_downward(self):
        manifest = load_manifest()
        assert manifest.allowed("cli", "core")
        assert manifest.allowed("runtime", "core")
        assert not manifest.allowed("core", "runtime")
        assert not manifest.allowed("sim", "experiments")

    def test_rule_configs_present(self):
        manifest = load_manifest()
        assert manifest.rule_config("RL002").get("layers")
        assert manifest.rule_config("RL004").get("registry_file")
        assert manifest.rule_config("no-such-rule") == {}


class TestValidation:
    def test_cycle_is_a_manifest_error(self, tmp_path):
        path = write(
            tmp_path,
            '[[layer]]\nname = "a"\ndepends = ["b"]\n'
            '[[layer]]\nname = "b"\ndepends = ["a"]\n',
        )
        with pytest.raises(ManifestError, match="cycle"):
            load_manifest(path)

    def test_unknown_dependency(self, tmp_path):
        path = write(tmp_path, '[[layer]]\nname = "a"\ndepends = ["ghost"]\n')
        with pytest.raises(ManifestError, match="unknown layer"):
            load_manifest(path)

    def test_duplicate_module_ownership(self, tmp_path):
        path = write(
            tmp_path,
            '[[layer]]\nname = "a"\nmodules = ["x"]\n'
            '[[layer]]\nname = "b"\nmodules = ["x"]\n',
        )
        with pytest.raises(ManifestError, match="owned by both"):
            load_manifest(path)

    def test_unsupported_schema(self, tmp_path):
        path = tmp_path / "layers.toml"
        path.write_text("[manifest]\nschema = 99\n")
        with pytest.raises(ManifestError, match="unsupported manifest schema"):
            load_manifest(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="not found"):
            load_manifest(tmp_path / "nope.toml")

    def test_no_layers(self, tmp_path):
        path = write(tmp_path, "")
        with pytest.raises(ManifestError, match="declares no layers"):
            load_manifest(path)
