"""Tests for random streams and timer disciplines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert list(a) == list(b)

    def test_different_keys_differ(self):
        streams = RandomStreams(7)
        a = streams.stream("x").random(5)
        b = streams.stream("y").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(8).stream("x").random(5)
        assert list(a) != list(b)

    def test_stream_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_stream_independent_of_creation_order(self):
        forward = RandomStreams(7)
        first = forward.stream("a").random(3)
        backward = RandomStreams(7)
        backward.stream("zzz")  # create an unrelated stream first
        second = backward.stream("a").random(3)
        assert list(first) == list(second)

    def test_spawn_reproducible(self):
        a = RandomStreams(7).spawn(3).stream("x").random(4)
        b = RandomStreams(7).spawn(3).stream("x").random(4)
        assert list(a) == list(b)

    def test_spawn_replications_differ(self):
        a = RandomStreams(7).spawn(0).stream("x").random(4)
        b = RandomStreams(7).spawn(1).stream("x").random(4)
        assert list(a) != list(b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_negative_replication_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).spawn(-2)


class TestTimer:
    def test_deterministic_draw_is_mean(self):
        timer = Timer(5.0, TimerDiscipline.DETERMINISTIC, RandomStreams(1).stream("t"))
        assert [timer.draw() for _ in range(3)] == [5.0, 5.0, 5.0]

    def test_exponential_draws_vary(self):
        timer = Timer(5.0, TimerDiscipline.EXPONENTIAL, RandomStreams(1).stream("t"))
        draws = [timer.draw() for _ in range(10)]
        assert len(set(draws)) > 1
        assert all(d > 0 for d in draws)

    def test_exponential_mean_approximately_right(self):
        timer = Timer(2.0, TimerDiscipline.EXPONENTIAL, RandomStreams(2).stream("t"))
        draws = [timer.draw() for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.05)

    def test_discipline_accepts_string(self):
        timer = Timer(1.0, "deterministic", RandomStreams(1).stream("t"))
        assert timer.discipline is TimerDiscipline.DETERMINISTIC

    @pytest.mark.parametrize("mean", [0.0, -1.0])
    def test_invalid_mean_rejected(self, mean):
        with pytest.raises(ValueError):
            Timer(mean, TimerDiscipline.DETERMINISTIC, RandomStreams(1).stream("t"))

    @given(mean=st.floats(min_value=1e-3, max_value=1e6), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_draws_always_positive(self, mean, seed):
        timer = Timer(mean, TimerDiscipline.EXPONENTIAL, RandomStreams(seed).stream("t"))
        assert all(timer.draw() >= 0.0 for _ in range(5))
