"""Tests for random streams and timer disciplines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert list(a) == list(b)

    def test_different_keys_differ(self):
        streams = RandomStreams(7)
        a = streams.stream("x").random(5)
        b = streams.stream("y").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(8).stream("x").random(5)
        assert list(a) != list(b)

    def test_stream_cached(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_stream_independent_of_creation_order(self):
        forward = RandomStreams(7)
        first = forward.stream("a").random(3)
        backward = RandomStreams(7)
        backward.stream("zzz")  # create an unrelated stream first
        second = backward.stream("a").random(3)
        assert list(first) == list(second)

    def test_spawn_reproducible(self):
        a = RandomStreams(7).spawn(3).stream("x").random(4)
        b = RandomStreams(7).spawn(3).stream("x").random(4)
        assert list(a) == list(b)

    def test_spawn_replications_differ(self):
        a = RandomStreams(7).spawn(0).stream("x").random(4)
        b = RandomStreams(7).spawn(1).stream("x").random(4)
        assert list(a) != list(b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_negative_replication_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).spawn(-2)

    def test_spawn_affine_collision_regression(self):
        # The old derivation (seed * 1_000_003 + r + 1) mapped
        # (seed=1, r=1_000_003) and (seed=2, r=0) to the same child
        # seed; the SeedSequence spawn_key derivation must not.
        a = RandomStreams(1).spawn(1_000_003)
        b = RandomStreams(2).spawn(0)
        assert a.seed != b.seed
        assert list(a.stream("x").random(4)) != list(b.stream("x").random(4))

    def test_stream_matches_seedsequence_spawn_key(self):
        # stream() must follow SeedSequence spawn_key semantics so keys
        # can never collide (distinct byte sequences, distinct streams).
        from repro.sim.randomness import _STREAM_DOMAIN

        expected = np.random.default_rng(
            np.random.SeedSequence(
                entropy=7, spawn_key=(_STREAM_DOMAIN, *b"channel")
            )
        ).random(5)
        observed = RandomStreams(7).stream("channel").random(5)
        assert list(observed) == list(expected)

    def test_spawned_families_independent_of_named_streams(self):
        # A replication child must not replay any named stream of the
        # parent (the domains are separated in the spawn_key).
        parent = RandomStreams(7)
        child = parent.spawn(0)
        for key in ("workload", "forward-channel", "x"):
            assert list(parent.stream(key).random(4)) != list(
                child.stream(key).random(4)
            )

    def test_spawn_seed_travels_through_int(self):
        # Workers rebuild the family from the integer seed alone.
        child = RandomStreams(11).spawn(3)
        rebuilt = RandomStreams(child.seed)
        assert list(child.stream("t").random(4)) == list(rebuilt.stream("t").random(4))


class TestTimer:
    def test_deterministic_draw_is_mean(self):
        timer = Timer(5.0, TimerDiscipline.DETERMINISTIC, RandomStreams(1).stream("t"))
        assert [timer.draw() for _ in range(3)] == [5.0, 5.0, 5.0]

    def test_exponential_draws_vary(self):
        timer = Timer(5.0, TimerDiscipline.EXPONENTIAL, RandomStreams(1).stream("t"))
        draws = [timer.draw() for _ in range(10)]
        assert len(set(draws)) > 1
        assert all(d > 0 for d in draws)

    def test_exponential_mean_approximately_right(self):
        timer = Timer(2.0, TimerDiscipline.EXPONENTIAL, RandomStreams(2).stream("t"))
        draws = [timer.draw() for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.05)

    def test_discipline_accepts_string(self):
        timer = Timer(1.0, "deterministic", RandomStreams(1).stream("t"))
        assert timer.discipline is TimerDiscipline.DETERMINISTIC

    @pytest.mark.parametrize("mean", [0.0, -1.0])
    def test_invalid_mean_rejected(self, mean):
        with pytest.raises(ValueError):
            Timer(mean, TimerDiscipline.DETERMINISTIC, RandomStreams(1).stream("t"))

    @given(mean=st.floats(min_value=1e-3, max_value=1e6), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_draws_always_positive(self, mean, seed):
        timer = Timer(mean, TimerDiscipline.EXPONENTIAL, RandomStreams(seed).stream("t"))
        assert all(timer.draw() >= 0.0 for _ in range(5))


class TestTimerDrawCountStability:
    """Each discipline consumes a fixed number of variates per draw().

    This is what keeps replication streams aligned: switching a timer's
    discipline (or drawing from it) must never desynchronize *other*
    components, and within a discipline every draw must cost the same
    so draw sequences are position-stable.
    """

    #: Underlying generator variates consumed by one draw().
    EXPECTED_CONSUMPTION = {
        TimerDiscipline.DETERMINISTIC: 0,
        TimerDiscipline.EXPONENTIAL: 1,
        TimerDiscipline.JITTERED: 1,
    }

    @staticmethod
    def _advance(discipline: TimerDiscipline, rng, count: int) -> None:
        for _ in range(count):
            if discipline is TimerDiscipline.EXPONENTIAL:
                rng.exponential(1.0)
            elif discipline is TimerDiscipline.JITTERED:
                rng.uniform(0.0, 1.0)

    @pytest.mark.parametrize("discipline", list(TimerDiscipline))
    @pytest.mark.parametrize("draws", [0, 1, 7])
    def test_draw_consumes_fixed_variate_count(self, discipline, draws):
        rng = RandomStreams(5).stream("t")
        timer = Timer(2.0, discipline, rng)
        for _ in range(draws):
            timer.draw()
        probe = rng.random()
        reference = RandomStreams(5).stream("t")
        self._advance(
            discipline, reference, draws * self.EXPECTED_CONSUMPTION[discipline]
        )
        assert probe == reference.random()

    def test_deterministic_timer_leaves_stream_untouched(self):
        rng = RandomStreams(9).stream("t")
        before = rng.bit_generator.state
        timer = Timer(3.0, TimerDiscipline.DETERMINISTIC, rng)
        assert [timer.draw() for _ in range(10)] == [3.0] * 10
        assert rng.bit_generator.state == before
