"""The vectorized replication path against the scalar event engine.

The contract is *bit identity*: for every supported config the
vectorized replay must produce the exact
:class:`~repro.protocols.session.SingleHopSimResult` the event engine
produces — same floats, same counts — because it replays the same
random streams in the same draw order through the same floating-point
op sequence.  Configs it cannot replay must be refused loudly
(``engine="vectorized"``) or fall back silently (``engine="auto"``,
dirty lanes), never drift.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.protocols.vectorized as vectorized_module
from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import (
    SIM_ENGINES,
    SingleHopSimulation,
    simulate_replications,
)
from repro.protocols.vectorized import (
    simulate_replications_vectorized,
    supports_vectorized_config,
    vectorized_sim_enabled,
)
from repro.sim.monitor import TimeWeightedValue
from repro.sim.randomness import RandomStreams, TimerDiscipline
from repro.sim.vectorized import (
    UniformPool,
    delivery_times,
    fold_active_time,
    fold_cumsum,
    refresh_grid,
)
from repro.validation.equivalence import SIM_EQUIVALENCE_CRITERIA


def make_config(protocol=Protocol.SS, sessions=15, seed=7, **param_changes):
    params = kazaa_defaults().replace(**param_changes)
    return SingleHopSimConfig(
        protocol=protocol, params=params, sessions=sessions, seed=seed
    )


def scalar_lanes(config, replications):
    """The event engine's per-replication results, seeded like the set."""
    streams = RandomStreams(config.seed)
    return [
        SingleHopSimulation(config.replace(seed=streams.spawn(i).seed)).run()
        for i in range(replications)
    ]


class TestArrayPrimitives:
    def test_uniform_pool_matches_scalar_draws(self):
        pool = UniformPool(RandomStreams(3).stream("forward-channel"))
        scalar_rng = RandomStreams(3).stream("forward-channel")
        for count in (1, 5, 0, 17, 2):
            block = pool.take(count)
            expected = [float(scalar_rng.random()) for _ in range(count)]
            np.testing.assert_array_equal(block, expected)

    @pytest.mark.parametrize("chunk", [1, 2, 7, 4096])
    def test_uniform_pool_chunk_size_is_invisible(self, chunk):
        reference = RandomStreams(9).stream("forward-channel").random(64)
        pool = UniformPool(RandomStreams(9).stream("forward-channel"), chunk=chunk)
        drawn = np.concatenate([pool.take(n) for n in (3, 11, 1, 30, 19)])
        np.testing.assert_array_equal(drawn, reference)

    def test_uniform_pool_rejects_bad_arguments(self):
        rng = RandomStreams(1).stream("forward-channel")
        with pytest.raises(ValueError, match="chunk"):
            UniformPool(rng, chunk=0)
        with pytest.raises(ValueError, match="count"):
            UniformPool(rng).take(-1)

    def test_fold_cumsum_is_the_left_fold(self):
        increments = np.array([0.1, 0.2, 0.3, 1e-9])
        out = fold_cumsum(5.0, increments)
        acc, expected = 5.0, [5.0]
        for inc in increments:
            acc = acc + inc
            expected.append(acc)
        np.testing.assert_array_equal(out, expected)

    def test_refresh_grid_folds_per_row(self):
        grid = refresh_grid(np.array([0.0, 1.7]), 0.3, 3)
        for row, start in zip(grid, (0.0, 1.7)):
            np.testing.assert_array_equal(row, fold_cumsum(start, np.full(3, 0.3)))

    def test_delivery_times_reproduce_engine_double_rounding(self):
        sends = np.array([0.1, 45.048, 1e6 + 0.7])
        delay = 0.03
        expected = [t + ((t + delay) - t) for t in sends]
        np.testing.assert_array_equal(delivery_times(sends, delay), expected)

    def test_fold_active_time_matches_time_weighted_value(self):
        times = np.array([0.0, 0.4, 0.4, 1.1, 2.0, 2.0])
        flags = np.array([1.0, 0.0, 1.0, 1.0, 0.0, 1.0])

        class Clock:
            now = 0.0

        clock = Clock()
        monitor = TimeWeightedValue(clock, initial=flags[0])
        for t, flag in zip(times[1:], flags[1:]):
            clock.now = float(t)
            monitor.set(flag)
        assert fold_active_time(times, flags) == monitor.integral()

    def test_fold_active_time_degenerate_inputs(self):
        assert fold_active_time(np.array([]), np.array([])) == 0.0
        assert fold_active_time(np.array([3.0]), np.array([1.0])) == 0.0


class TestBitIdentity:
    @pytest.mark.parametrize("protocol", [Protocol.SS, Protocol.SS_ER])
    @pytest.mark.parametrize("loss", [0.02, 0.3, 0.6])
    def test_lane_results_equal_engine_results(self, protocol, loss):
        config = make_config(protocol, sessions=15, seed=40, loss_rate=loss)
        vec = simulate_replications_vectorized(config, 2)
        assert vec == scalar_lanes(config, 2)

    def test_timeout_multiple_of_refresh_ties(self):
        # T = 3R with constant delay puts refresh receipts exactly on
        # timeout expiries; the engine fires the earlier-scheduled
        # timeout first and the refresh re-installs at the same instant.
        config = make_config(
            Protocol.SS,
            sessions=25,
            seed=40,
            loss_rate=0.3,
            refresh_interval=5.0,
            timeout_interval=15.0,
        )
        vec = simulate_replications_vectorized(config, 3)
        scalar = scalar_lanes(config, 3)
        assert vec == scalar
        assert sum(r.timeout_removals for r in scalar) > 0

    def test_dirty_lanes_fall_back_to_the_engine(self, monkeypatch):
        # Delay comparable to the timeout leaves receipts in flight
        # across session ends; those lanes must be re-run through the
        # scalar engine and still match it exactly.
        config = make_config(
            Protocol.SS, sessions=15, seed=1, loss_rate=0.6, delay=4.0
        )
        dirty = 0
        original = vectorized_module._simulate_lane

        def counting(lane_config):
            nonlocal dirty
            outcome = original(lane_config)
            if outcome is None:
                dirty += 1
            return outcome

        monkeypatch.setattr(vectorized_module, "_simulate_lane", counting)
        vec = simulate_replications_vectorized(config, 2)
        assert dirty > 0
        assert vec == scalar_lanes(config, 2)

    def test_zero_update_rate_sessions(self):
        config = make_config(
            Protocol.SS_ER, sessions=20, seed=3, loss_rate=0.4, update_rate=0.0
        )
        assert simulate_replications_vectorized(config, 2) == scalar_lanes(config, 2)


class TestReplicationSetDispatch:
    def test_auto_equals_scalar_samples_exactly(self):
        config = make_config(Protocol.SS_ER, sessions=20, seed=11, loss_rate=0.1)
        auto = simulate_replications(config, 4, engine="auto")
        scalar = simulate_replications(config, 4, engine="scalar")
        explicit = simulate_replications(config, 4, engine="vectorized")
        for metric in ("inconsistency_ratio", "normalized_message_rate"):
            assert auto.samples(metric) == scalar.samples(metric)
            assert explicit.samples(metric) == scalar.samples(metric)

    def test_replication_count_prefix_determinism(self):
        # Lane k's stream depends only on (seed, k): a longer run's
        # samples extend a shorter run's, they never reshuffle.
        config = make_config(Protocol.SS, sessions=12, seed=21, loss_rate=0.2)
        short = simulate_replications(config, 3, engine="vectorized")
        long = simulate_replications(config, 5, engine="vectorized")
        for metric in ("inconsistency_ratio", "normalized_message_rate"):
            assert long.samples(metric)[:3] == short.samples(metric)

    def test_pool_chunk_size_does_not_change_results(self, monkeypatch):
        config = make_config(Protocol.SS_ER, sessions=15, seed=13, loss_rate=0.3)
        reference = simulate_replications_vectorized(config, 2)
        monkeypatch.setattr(
            vectorized_module,
            "UniformPool",
            lambda rng: UniformPool(rng, chunk=5),
        )
        assert simulate_replications_vectorized(config, 2) == reference

    def test_auto_falls_back_for_unsupported_protocols(self):
        config = make_config(Protocol.SS_RT, sessions=10, seed=5)
        auto = simulate_replications(config, 2, engine="auto")
        scalar = simulate_replications(config, 2, engine="scalar")
        for metric in ("inconsistency_ratio", "normalized_message_rate"):
            assert auto.samples(metric) == scalar.samples(metric)


class TestEngineValidation:
    def test_engine_names(self):
        assert SIM_ENGINES == ("auto", "scalar", "vectorized")
        with pytest.raises(ValueError, match="unknown sim engine"):
            simulate_replications(make_config(), 2, engine="numpy")

    def test_replications_validated(self):
        with pytest.raises(ValueError, match="replications"):
            simulate_replications(make_config(), 0)
        with pytest.raises(ValueError, match="replications"):
            simulate_replications_vectorized(make_config(), 0)

    @pytest.mark.parametrize(
        "changes",
        [
            {"protocol": Protocol.SS_RT},
            {"protocol": Protocol.SS_RTR},
            {"protocol": Protocol.HS},
            {"timer_discipline": TimerDiscipline.EXPONENTIAL},
            {"delay_discipline": TimerDiscipline.EXPONENTIAL},
            {"sample_times": (10.0, 20.0)},
        ],
    )
    def test_unsupported_configs_refused(self, changes):
        config = make_config().replace(**changes)
        assert not supports_vectorized_config(config)
        with pytest.raises(ValueError, match="vectorized"):
            simulate_replications(config, 2, engine="vectorized")
        with pytest.raises(ValueError, match="not supported"):
            simulate_replications_vectorized(config, 2)

    def test_gilbert_channel_refused(self):
        from repro.faults.gilbert import GilbertElliottParameters

        config = make_config().replace(
            gilbert=GilbertElliottParameters(
                loss_good=0.01, loss_bad=0.5, good_to_bad=0.01, bad_to_good=0.1
            )
        )
        assert not supports_vectorized_config(config)

    def test_delay_at_or_above_timeout_refused(self):
        config = make_config(delay=20.0, timeout_interval=15.0)
        assert not supports_vectorized_config(config)

    def test_supported_config_accepted(self):
        assert supports_vectorized_config(make_config(Protocol.SS))
        assert supports_vectorized_config(make_config(Protocol.SS_ER))


class TestEnvironmentSwitch:
    @pytest.mark.parametrize("value", ["0", "off", "FALSE", " no "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_VECTOR_SIM", value)
        assert not vectorized_sim_enabled()

    @pytest.mark.parametrize("value", [None, "", "1", "on"])
    def test_enabling_values(self, monkeypatch, value):
        if value is None:
            monkeypatch.delenv("REPRO_VECTOR_SIM", raising=False)
        else:
            monkeypatch.setenv("REPRO_VECTOR_SIM", value)
        assert vectorized_sim_enabled()

    def test_disabled_auto_routes_through_the_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_SIM", "0")

        def boom(*args, **kwargs):
            raise AssertionError("vectorized path used despite REPRO_VECTOR_SIM=0")

        monkeypatch.setattr(
            "repro.protocols.vectorized.simulate_replications_vectorized", boom
        )
        config = make_config(sessions=5)
        scalar = simulate_replications(config, 2, engine="scalar")
        auto = simulate_replications(config, 2, engine="auto")
        assert auto.samples("inconsistency_ratio") == scalar.samples(
            "inconsistency_ratio"
        )

    def test_disabled_vectorized_request_still_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_SIM", "0")
        config = make_config(Protocol.SS_RT)
        with pytest.raises(ValueError, match="vectorized"):
            simulate_replications(config, 2, engine="vectorized")


class TestModelEquivalence:
    def test_fig11_point_equivalent_to_model(self):
        # The fig11 acceptance gate at unit-test scale: the vectorized
        # simulator's estimate must sit inside the registered
        # Student-t equivalence band around the analytic model.
        params = kazaa_defaults()
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=params, sessions=300, seed=2024
        )
        results = simulate_replications(config, 8, engine="vectorized")
        model = SingleHopModel(Protocol.SS, params).solve()

        inconsistency = results.interval("inconsistency_ratio")
        criterion = SIM_EQUIVALENCE_CRITERIA["inconsistency"]
        assert abs(inconsistency.mean - model.inconsistency_ratio) <= (
            criterion.allowance(model.inconsistency_ratio, inconsistency.half_width)
        )

        message_rate = results.interval("normalized_message_rate")
        criterion = SIM_EQUIVALENCE_CRITERIA["message_rate"]
        assert abs(message_rate.mean - model.normalized_message_rate) <= (
            criterion.allowance(model.normalized_message_rate, message_rate.half_width)
        )
