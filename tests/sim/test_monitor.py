"""Tests for time-weighted monitors and counters."""

from __future__ import annotations

import pytest

from repro.sim.engine import Environment
from repro.sim.monitor import Counter, StateFractionMonitor, TimeWeightedValue


class TestTimeWeightedValue:
    def test_constant_signal_integral(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=2.0)
        env.run(until=5.0)
        assert signal.integral() == pytest.approx(10.0)
        assert signal.time_average() == pytest.approx(2.0)

    def test_step_changes_integrate_piecewise(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=0.0)

        def proc(env):
            yield env.timeout(2.0)
            signal.set(3.0)
            yield env.timeout(4.0)
            signal.set(1.0)
            yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        # 2s at 0 + 4s at 3 + 2s at 1 = 14
        assert signal.integral() == pytest.approx(14.0)
        assert signal.time_average() == pytest.approx(14.0 / 8.0)

    def test_zero_elapsed_average_is_zero(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=9.0)
        assert signal.time_average() == 0.0

    def test_reset_restarts_integration(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=5.0)
        env.run(until=3.0)
        signal.reset()
        env.run(until=7.0)
        assert signal.integral() == pytest.approx(20.0)
        assert signal.time_average() == pytest.approx(5.0)

    def test_repeated_set_same_time_uses_last_value(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=0.0)
        signal.set(10.0)
        signal.set(2.0)
        env.run(until=1.0)
        assert signal.integral() == pytest.approx(2.0)


class TestStateFractionMonitor:
    def test_fraction_of_time_active(self):
        env = Environment()
        monitor = StateFractionMonitor(env, initial=False)

        def proc(env):
            yield env.timeout(1.0)
            monitor.set(True)
            yield env.timeout(3.0)
            monitor.set(False)
            yield env.timeout(6.0)

        env.process(proc(env))
        env.run()
        assert monitor.active_time() == pytest.approx(3.0)
        assert monitor.fraction() == pytest.approx(0.3)

    def test_initial_state_counts(self):
        env = Environment()
        monitor = StateFractionMonitor(env, initial=True)
        env.run(until=4.0)
        assert monitor.fraction() == pytest.approx(1.0)
        assert monitor.active

    def test_idempotent_set(self):
        env = Environment()
        monitor = StateFractionMonitor(env, initial=True)
        monitor.set(True)
        env.run(until=2.0)
        monitor.set(True)
        env.run(until=4.0)
        assert monitor.active_time() == pytest.approx(4.0)

    def test_reset_clears_history(self):
        env = Environment()
        monitor = StateFractionMonitor(env, initial=True)
        env.run(until=5.0)
        monitor.reset()
        env.run(until=10.0)
        assert monitor.active_time() == pytest.approx(5.0)
        assert monitor.fraction() == pytest.approx(1.0)


class TestCounter:
    def test_increment_default(self):
        counter = Counter("messages")
        counter.increment()
        counter.increment()
        assert counter.count == 2

    def test_increment_amount(self):
        counter = Counter()
        counter.increment(5)
        assert counter.count == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_rate(self):
        counter = Counter()
        counter.increment(10)
        assert counter.rate(4.0) == pytest.approx(2.5)

    def test_rate_zero_elapsed(self):
        counter = Counter()
        counter.increment()
        assert counter.rate(0.0) == 0.0
