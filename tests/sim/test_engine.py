"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import Environment, Interrupt, SimulationError


def run_collecting(generator_factory):
    """Run a single process to completion; return (env, result)."""
    env = Environment()
    proc = env.process(generator_factory(env))
    result = env.run(until=proc)
    return env, result


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self):
        def proc(env):
            yield env.timeout(2.5)
            return env.now

        _, result = run_collecting(proc)
        assert result == 2.5

    def test_sequential_timeouts_accumulate(self):
        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            yield env.timeout(3.0)
            return env.now

        _, result = run_collecting(proc)
        assert result == 6.0

    def test_zero_delay_timeout_allowed(self):
        def proc(env):
            yield env.timeout(0.0)
            return env.now

        _, result = run_collecting(proc)
        assert result == 0.0

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_time_sets_clock(self):
        env = Environment()
        env.run(until=100.0)
        assert env.now == 100.0

    def test_run_backwards_rejected(self):
        env = Environment()
        env.run(until=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)


class TestEventOrdering:
    def test_same_time_events_fire_in_schedule_order(self):
        env = Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_earlier_events_fire_first(self):
        env = Environment()
        order = []

        def proc(env, delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(env, 3.0, "late"))
        env.process(proc(env, 1.0, "early"))
        env.process(proc(env, 2.0, "middle"))
        env.run()
        assert order == ["early", "middle", "late"]

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_peek_empty_queue_is_inf(self):
        env = Environment()
        # Drain the queue first (nothing scheduled).
        assert env.peek() == float("inf")

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestEvents:
    def test_event_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_succeed_carries_value(self):
        def proc(env):
            event = env.event()
            event.succeed("payload", delay=1.0)
            got = yield event
            return got

        _, result = run_collecting(proc)
        assert result == "payload"

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_failed_event_raises_in_waiter(self):
        class Boom(Exception):
            pass

        def proc(env):
            event = env.event()
            event.fail(Boom("bang"), delay=1.0)
            with pytest.raises(Boom):
                yield event
            return "survived"

        _, result = run_collecting(proc)
        assert result == "survived"

    def test_waiting_on_processed_event_returns_value_immediately(self):
        env = Environment()
        early = env.event()
        early.succeed(41)
        collected = []

        def late(env):
            yield env.timeout(5.0)
            value = yield early
            collected.append((env.now, value))

        env.process(late(env))
        env.run()
        assert collected == [(5.0, 41)]

    def test_ok_reflects_outcome(self):
        env = Environment()
        good = env.event()
        good.succeed()
        bad = env.event()
        bad.fail(ValueError("x"))
        assert good.ok
        assert not bad.ok


class TestProcesses:
    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_return_value_becomes_event_value(self):
        def child(env):
            yield env.timeout(1.0)
            return 42

        def parent(env):
            result = yield env.process(child(env))
            return result

        _, result = run_collecting(parent)
        assert result == 42

    def test_yielding_non_event_raises(self):
        def proc(env):
            yield 7  # type: ignore[misc]

        env = Environment()
        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_in_process_propagates_to_waiter(self):
        class Boom(Exception):
            pass

        def child(env):
            yield env.timeout(1.0)
            raise Boom("child exploded")

        def parent(env):
            with pytest.raises(Boom):
                yield env.process(child(env))
            return "handled"

        _, result = run_collecting(parent)
        assert result == "handled"

    def test_unwaited_process_failure_raises_at_run_until_event(self):
        class Boom(Exception):
            pass

        def child(env):
            yield env.timeout(1.0)
            raise Boom()

        env = Environment()
        proc = env.process(child(env))
        with pytest.raises(Boom):
            env.run(until=proc)

    def test_is_alive_lifecycle(self):
        def proc(env):
            yield env.timeout(1.0)

        env = Environment()
        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_two_processes_interleave(self):
        env = Environment()
        log = []

        def ticker(env, period, tag, count):
            for _ in range(count):
                yield env.timeout(period)
                log.append((env.now, tag))

        env.process(ticker(env, 2.0, "a", 3))
        env.process(ticker(env, 3.0, "b", 2))
        env.run()
        # At t=6 both fire; "b" scheduled its timeout earlier (t=3 vs
        # t=4), so the FIFO tie-break runs it first.
        assert log == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]

    def test_active_process_visible_during_execution(self):
        env = Environment()
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(1.0)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
                log.append("overslept")
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        def waker(env, target):
            yield env.timeout(3.0)
            target.interrupt("alarm")

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert log == [(3.0, "alarm")]

    def test_interrupt_dead_process_rejected(self):
        def quick(env):
            yield env.timeout(1.0)

        env = Environment()
        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def resilient(env):
            try:
                yield env.timeout(50.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def waker(env, target):
            yield env.timeout(2.0)
            target.interrupt()

        target = env.process(resilient(env))
        env.process(waker(env, target))
        env.run()
        assert log == [3.0]

    def test_original_timeout_does_not_fire_after_interrupt(self):
        env = Environment()
        wakeups = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
                wakeups.append("timeout")
            except Interrupt:
                wakeups.append("interrupt")
            # Sleep past the original timeout to catch double-resume.
            yield env.timeout(20.0)

        def waker(env, target):
            yield env.timeout(1.0)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert wakeups == ["interrupt"]


class TestInterruptEdgeCases:
    def test_stale_timeout_fire_does_not_resume_waiting_process(self):
        """The pending Timeout of an interrupted wait fires later; the
        process (by then waiting on a new event) must not be resumed by
        the stale firing — it resumes exactly once, from the new wait."""
        env = Environment()
        resumes = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
                resumes.append(("timeout", env.now))
            except Interrupt:
                resumes.append(("interrupt", env.now))
            # A wait that straddles t=10, when the stale Timeout fires.
            yield env.timeout(100.0)
            resumes.append(("woke", env.now))

        def waker(env, target):
            yield env.timeout(5.0)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert resumes == [("interrupt", 5.0), ("woke", 105.0)]

    def test_rewaiting_on_the_interrupted_timeout_still_works(self):
        """After an interrupt, a process may deliberately re-yield the
        Timeout it was waiting on; the pending event resumes it at the
        originally scheduled time."""
        env = Environment()
        log = []

        def sleeper(env):
            wait = env.timeout(10.0)
            try:
                yield wait
                log.append(("slept", env.now))
            except Interrupt:
                log.append(("interrupt", env.now))
                yield wait
                log.append(("slept-late", env.now))

        def waker(env, target):
            yield env.timeout(4.0)
            target.interrupt()

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert log == [("interrupt", 4.0), ("slept-late", 10.0)]

    def test_queued_interrupts_delivered_in_order(self):
        env = Environment()
        causes = []

        def sleeper(env):
            for _ in range(2):
                try:
                    yield env.timeout(100.0)
                except Interrupt as interrupt:
                    causes.append((interrupt.cause, env.now))
            yield env.timeout(1.0)
            causes.append(("done", env.now))

        def waker(env, target):
            yield env.timeout(2.0)
            target.interrupt("first")
            target.interrupt("second")

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert causes == [("first", 2.0), ("second", 2.0), ("done", 3.0)]

    def test_pending_interrupt_dropped_when_generator_returns(self):
        """A process that finishes while a second interrupt is queued
        completes normally; the leftover interrupt is discarded."""
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                return "stopped"
            return "slept"

        def waker(env, target):
            yield env.timeout(1.0)
            target.interrupt("a")
            target.interrupt("b")

        target = env.process(sleeper(env))
        env.process(waker(env, target))
        env.run()
        assert target.value == "stopped"


class TestRunUntil:
    def test_run_until_event_returns_its_value(self):
        env = Environment()
        event = env.event()
        event.succeed("done", delay=4.0)
        assert env.run(until=event) == "done"
        assert env.now == 4.0

    def test_run_until_unreachable_event_raises(self):
        env = Environment()
        never = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=never)

    def test_run_without_until_drains_queue(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(7.0)
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [7.0]
        assert env.peek() == float("inf")

    def test_run_until_time_leaves_future_events_queued(self):
        env = Environment()
        log = []

        def proc(env):
            yield env.timeout(10.0)
            log.append(env.now)

        env.process(proc(env))
        env.run(until=5.0)
        assert log == []
        env.run(until=15.0)
        assert log == [10.0]
