"""Tests for the grid-sampling TimeSeriesMonitor."""

from __future__ import annotations

import pytest

from repro.sim.engine import Environment
from repro.sim.monitor import TimeSeriesMonitor, TimeWeightedValue


class TestTimeSeriesMonitor:
    def test_samples_probe_at_grid_times(self):
        env = Environment()
        signal = TimeWeightedValue(env, initial=0.0)
        monitor = TimeSeriesMonitor(env, (1.0, 3.0, 5.0), lambda: signal.value)

        def proc(env):
            yield env.timeout(2.0)
            signal.set(7.0)
            yield env.timeout(2.0)
            signal.set(9.0)
            yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        assert monitor.samples() == (0.0, 7.0, 9.0)

    def test_empty_grid_records_nothing(self):
        env = Environment()
        monitor = TimeSeriesMonitor(env, (), lambda: 1.0)
        env.run(until=10.0)
        assert monitor.samples() == ()

    def test_sample_at_current_instant(self):
        env = Environment()
        monitor = TimeSeriesMonitor(env, (0.0, 2.0), lambda: env.now)
        env.run(until=5.0)
        assert monitor.samples() == (0.0, 2.0)

    def test_unsorted_grid_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            TimeSeriesMonitor(env, (2.0, 1.0), lambda: 0.0)

    def test_grid_before_now_rejected(self):
        env = Environment()
        env.run(until=5.0)
        with pytest.raises(ValueError):
            TimeSeriesMonitor(env, (1.0,), lambda: 0.0)

    def test_run_shorter_than_grid_truncates(self):
        env = Environment()
        monitor = TimeSeriesMonitor(env, (1.0, 100.0), lambda: 1.0)
        env.run(until=2.0)
        assert monitor.samples() == (1.0,)
