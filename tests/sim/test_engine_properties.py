"""Property-based tests of the simulation kernel's core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment


@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_clock_is_sum_of_delays(delays):
    env = Environment()

    def proc(env):
        for delay in delays:
            yield env.timeout(delay)

    p = env.process(proc(env))
    env.run(until=p)
    assert abs(env.now - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@given(
    schedule=st.lists(
        st.tuples(st.floats(0.0, 50.0), st.integers(0, 1000)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(schedule):
    env = Environment()
    fired = []

    def waiter(env, delay, tag):
        yield env.timeout(delay)
        fired.append((env.now, tag))

    for delay, tag in schedule:
        env.process(waiter(env, delay, tag))
    env.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(schedule)


@given(
    delays=st.lists(st.floats(0.0, 20.0), min_size=2, max_size=20),
    horizon=st.floats(0.1, 30.0),
)
@settings(max_examples=60, deadline=None)
def test_run_until_time_is_a_clean_cut(delays, horizon):
    """Events at or before the horizon fire; later ones stay queued."""
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run(until=horizon)
    assert all(t <= horizon for t in fired)
    expected = sum(1 for d in delays if d <= horizon)
    assert len(fired) == expected
    env.run()
    assert len(fired) == len(delays)


@given(seed_count=st.integers(1, 25))
@settings(max_examples=30, deadline=None)
def test_fifo_tiebreak_preserves_schedule_order(seed_count):
    """Simultaneous events fire in the order they were scheduled."""
    env = Environment()
    fired = []

    def waiter(env, tag):
        yield env.timeout(1.0)
        fired.append(tag)

    for tag in range(seed_count):
        env.process(waiter(env, tag))
    env.run()
    assert fired == list(range(seed_count))
