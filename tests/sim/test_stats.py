"""Tests for replication statistics and confidence intervals."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import ConfidenceInterval, ReplicationSet, student_t_interval


class TestStudentTInterval:
    def test_known_small_sample(self):
        # mean 2, sample std 1, n = 4 -> half-width = t_{0.975,3} * 0.5
        interval = student_t_interval([1.0, 2.0, 2.0, 3.0], confidence=0.95)
        assert interval.mean == pytest.approx(2.0)
        expected_half = 3.1824463052842638 * math.sqrt((2.0 / 3.0) / 4.0)
        assert interval.half_width == pytest.approx(expected_half, rel=1e-6)

    def test_identical_samples_zero_width(self):
        interval = student_t_interval([5.0] * 10)
        assert interval.mean == 5.0
        assert interval.half_width == pytest.approx(0.0)

    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_zero_variance_interval_is_degenerate_not_nan(self, n):
        # Regression: all-identical samples must yield an exactly-zero,
        # finite half-width (no sqrt/ppf NaN leakage) whose interval
        # still contains the common value.
        interval = student_t_interval([2.5] * n)
        assert interval.half_width == 0.0
        assert math.isfinite(interval.half_width)
        assert interval.low == interval.high == interval.mean == 2.5
        assert interval.contains(2.5)
        assert not interval.contains(2.5 + 1e-12)

    def test_single_sample_infinite_width(self):
        interval = student_t_interval([3.0])
        assert interval.mean == 3.0
        assert math.isinf(interval.half_width)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            student_t_interval([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_confidence_rejected(self, confidence):
        with pytest.raises(ValueError):
            student_t_interval([1.0, 2.0], confidence=confidence)

    def test_higher_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = student_t_interval(samples, confidence=0.90)
        wide = student_t_interval(samples, confidence=0.99)
        assert wide.half_width > narrow.half_width

    @given(
        samples=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_contains_mean(self, samples):
        interval = student_t_interval(samples)
        mean = sum(samples) / len(samples)
        assert interval.contains(mean)
        assert interval.low <= interval.high


class TestConfidenceInterval:
    def test_endpoints(self):
        interval = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.95, n=5)
        assert interval.low == 8.0
        assert interval.high == 12.0
        assert interval.contains(9.0)
        assert not interval.contains(13.0)

    def test_str_mentions_confidence_and_n(self):
        text = str(ConfidenceInterval(mean=1.0, half_width=0.1, confidence=0.95, n=7))
        assert "95%" in text
        assert "n=7" in text


class TestReplicationSet:
    def test_mean_and_count(self):
        replications = ReplicationSet()
        for value in (1.0, 2.0, 3.0):
            replications.add("metric", value)
        assert replications.count("metric") == 3
        assert replications.mean("metric") == pytest.approx(2.0)

    def test_multiple_metrics_independent(self):
        replications = ReplicationSet()
        replications.add("a", 1.0)
        replications.add("b", 10.0)
        assert replications.metrics() == ["a", "b"]
        assert replications.samples("a") == [1.0]

    def test_interval_delegates(self):
        replications = ReplicationSet()
        for value in (1.0, 2.0, 3.0, 4.0):
            replications.add("m", value)
        interval = replications.interval("m")
        assert interval.n == 4
        assert interval.mean == pytest.approx(2.5)

    def test_non_finite_sample_rejected(self):
        replications = ReplicationSet()
        with pytest.raises(ValueError):
            replications.add("m", float("nan"))
        with pytest.raises(ValueError):
            replications.add("m", float("inf"))

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            ReplicationSet().mean("missing")

    @pytest.mark.parametrize("accessor", ["samples", "mean", "interval"])
    def test_unknown_metric_error_lists_known_metrics(self, accessor):
        replications = ReplicationSet()
        replications.add("inconsistency_ratio", 0.1)
        replications.add("normalized_message_rate", 2.0)
        with pytest.raises(KeyError) as excinfo:
            getattr(replications, accessor)("missing")
        message = str(excinfo.value)
        assert "missing" in message
        assert "inconsistency_ratio" in message
        assert "normalized_message_rate" in message

    def test_unknown_metric_error_on_empty_set(self):
        with pytest.raises(KeyError) as excinfo:
            ReplicationSet().samples("anything")
        assert "none recorded" in str(excinfo.value)
