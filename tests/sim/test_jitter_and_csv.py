"""Tests for the jittered timer discipline and CSV export."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.experiments import run_experiment
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.session import SingleHopSimulation
from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline


class TestJitteredTimer:
    def test_draws_within_band(self):
        timer = Timer(10.0, TimerDiscipline.JITTERED, RandomStreams(3).stream("t"))
        draws = [timer.draw() for _ in range(500)]
        assert all(5.0 <= d <= 15.0 for d in draws)

    def test_mean_preserved(self):
        timer = Timer(10.0, TimerDiscipline.JITTERED, RandomStreams(3).stream("t"))
        draws = [timer.draw() for _ in range(20_000)]
        assert sum(draws) / len(draws) == pytest.approx(10.0, rel=0.02)

    def test_rsvp_style_jitter_preserves_model_conclusions(self, params):
        """Deployed RSVP jitters refreshes over [0.5R, 1.5R]; the
        model's metrics must be insensitive to that (regression on the
        'timers are exponential' approximation being benign)."""
        model = SingleHopModel(Protocol.SS_ER, params).solve()
        config = SingleHopSimConfig(
            protocol=Protocol.SS_ER,
            params=params,
            sessions=250,
            seed=11,
            timer_discipline=TimerDiscipline.JITTERED,
        )
        result = SingleHopSimulation(config).run()
        assert result.inconsistency_ratio == pytest.approx(
            model.inconsistency_ratio, rel=0.35
        )
        assert result.normalized_message_rate(params.removal_rate) == pytest.approx(
            model.normalized_message_rate, rel=0.2
        )


class TestCsvExport:
    def test_csv_per_panel(self):
        result = run_experiment("fig17", fast=True)
        documents = result.to_csv()
        assert set(documents) == {"per-hop inconsistency"}

    def test_csv_header_and_rows(self):
        result = run_experiment("fig17", fast=True)
        csv_text = result.to_csv()["per-hop inconsistency"]
        lines = csv_text.strip().splitlines()
        header = lines[0].split(",")
        assert header[0] == "hop index i"
        assert header[1:] == ["SS", "SS+RT", "HS"]
        assert len(lines) == 1 + 20  # header + one row per hop

    def test_csv_includes_error_columns_for_sim_series(self):
        result = run_experiment("fig11", fast=True)
        csv_text = result.to_csv()["a: inconsistency ratio"]
        header = csv_text.splitlines()[0]
        assert "SS sim_err" in header

    def test_csv_values_roundtrip(self):
        result = run_experiment("fig17", fast=True)
        csv_text = result.to_csv()["per-hop inconsistency"]
        first_row = csv_text.splitlines()[1].split(",")
        series = result.panel("per-hop inconsistency").series_by_label("SS")
        assert float(first_row[1]) == pytest.approx(series.y[0], rel=1e-9)
