"""Tests for the lossy, delaying, non-reordering channel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channel import Channel, ChannelConfig
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, TimerDiscipline


def make_channel(loss=0.0, delay=0.1, discipline=TimerDiscipline.DETERMINISTIC, seed=1):
    env = Environment()
    received = []
    channel = Channel(
        env,
        ChannelConfig(loss_rate=loss, mean_delay=delay, delay_discipline=discipline),
        RandomStreams(seed).stream("chan"),
        received.append,
    )
    return env, channel, received


class TestChannelConfig:
    @pytest.mark.parametrize("loss", [-0.1, 1.0, 1.5])
    def test_invalid_loss_rejected(self, loss):
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=loss, mean_delay=0.1)

    @pytest.mark.parametrize("delay", [0.0, -0.5])
    def test_invalid_delay_rejected(self, delay):
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=0.0, mean_delay=delay)


class TestDelivery:
    def test_lossless_delivers_everything(self):
        env, channel, received = make_channel()
        for i in range(100):
            assert channel.send(i)
        env.run()
        assert [m.payload for m in received] == list(range(100))
        assert channel.delivered == 100
        assert channel.lost == 0

    def test_fixed_delay_applied(self):
        env, channel, received = make_channel(delay=0.25)
        channel.send("x")
        env.run()
        assert received[0].sent_at == 0.0
        assert received[0].delivered_at == 0.25

    def test_loss_statistics_conserved(self):
        env, channel, received = make_channel(loss=0.4, seed=3)
        for i in range(2000):
            channel.send(i)
        env.run()
        assert channel.sent == 2000
        assert channel.lost + channel.delivered == channel.sent
        assert channel.delivered == len(received)

    def test_loss_rate_statistically_plausible(self):
        env, channel, _ = make_channel(loss=0.3, seed=5)
        for i in range(10_000):
            channel.send(i)
        env.run()
        assert channel.lost / channel.sent == pytest.approx(0.3, abs=0.02)

    def test_certain_delivery_with_zero_loss(self):
        env, channel, _ = make_channel(loss=0.0)
        assert all(channel.send(i) for i in range(50))

    def test_send_returns_false_on_drop(self):
        env, channel, _ = make_channel(loss=0.999999, seed=9)
        outcomes = [channel.send(i) for i in range(20)]
        assert not any(outcomes)


class TestNonReordering:
    def test_exponential_delays_do_not_reorder(self):
        env, channel, received = make_channel(
            delay=0.5, discipline=TimerDiscipline.EXPONENTIAL, seed=11
        )
        for i in range(500):
            channel.send(i)
        env.run()
        payloads = [m.payload for m in received]
        assert payloads == sorted(payloads)

    def test_delivery_times_monotone(self):
        env, channel, received = make_channel(
            delay=0.5, discipline=TimerDiscipline.EXPONENTIAL, seed=13
        )

        def staggered(env):
            for i in range(200):
                channel.send(i)
                yield env.timeout(0.01)

        env.process(staggered(env))
        env.run()
        times = [m.delivered_at for m in received]
        assert times == sorted(times)

    @given(seed=st.integers(0, 2**16), loss=st.floats(0.0, 0.8))
    @settings(max_examples=25, deadline=None)
    def test_fifo_property_random_channels(self, seed, loss):
        env, channel, received = make_channel(
            loss=loss, delay=0.2, discipline=TimerDiscipline.EXPONENTIAL, seed=seed
        )
        for i in range(100):
            channel.send(i)
        env.run()
        payloads = [m.payload for m in received]
        assert payloads == sorted(payloads)


class TestLossHook:
    def test_on_loss_reports_lost_payloads(self):
        env = Environment()
        received, lost = [], []
        channel = Channel(
            env,
            ChannelConfig(loss_rate=0.5, mean_delay=0.1),
            RandomStreams(17).stream("chan"),
            received.append,
            on_loss=lost.append,
        )
        for i in range(300):
            channel.send(i)
        env.run()
        assert len(lost) == channel.lost
        assert set(lost) | {m.payload for m in received} == set(range(300))

    def test_loss_notification_arrives_after_delay(self):
        env = Environment()
        events = []
        channel = Channel(
            env,
            ChannelConfig(loss_rate=0.9999999, mean_delay=0.3),
            RandomStreams(19).stream("chan"),
            lambda m: events.append(("delivered", env.now)),
            on_loss=lambda p: events.append(("lost", env.now)),
        )
        channel.send("x")
        env.run()
        assert events == [("lost", 0.3)]
