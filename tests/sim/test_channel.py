"""Tests for the lossy, delaying, non-reordering channel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channel import Channel, ChannelConfig, GilbertElliottProcess
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, TimerDiscipline


def make_channel(loss=0.0, delay=0.1, discipline=TimerDiscipline.DETERMINISTIC, seed=1):
    env = Environment()
    received = []
    channel = Channel(
        env,
        ChannelConfig(loss_rate=loss, mean_delay=delay, delay_discipline=discipline),
        RandomStreams(seed).stream("chan"),
        received.append,
    )
    return env, channel, received


class TestChannelConfig:
    @pytest.mark.parametrize("loss", [-0.1, 1.5])
    def test_invalid_loss_rejected(self, loss):
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=loss, mean_delay=0.1)

    @pytest.mark.parametrize("delay", [-0.5, float("-inf")])
    def test_invalid_delay_rejected(self, delay):
        with pytest.raises(ValueError):
            ChannelConfig(loss_rate=0.0, mean_delay=delay)

    @pytest.mark.parametrize("loss,delay", [(1.0, 0.1), (0.0, 0.0), (1.0, 0.0)])
    def test_boundary_configs_accepted(self, loss, delay):
        config = ChannelConfig(loss_rate=loss, mean_delay=delay)
        assert config.loss_rate == loss
        assert config.mean_delay == delay


class TestDelivery:
    def test_lossless_delivers_everything(self):
        env, channel, received = make_channel()
        for i in range(100):
            assert channel.send(i)
        env.run()
        assert [m.payload for m in received] == list(range(100))
        assert channel.delivered == 100
        assert channel.lost == 0

    def test_fixed_delay_applied(self):
        env, channel, received = make_channel(delay=0.25)
        channel.send("x")
        env.run()
        assert received[0].sent_at == 0.0
        assert received[0].delivered_at == 0.25

    def test_loss_statistics_conserved(self):
        env, channel, received = make_channel(loss=0.4, seed=3)
        for i in range(2000):
            channel.send(i)
        env.run()
        assert channel.sent == 2000
        assert channel.lost + channel.delivered == channel.sent
        assert channel.delivered == len(received)

    def test_loss_rate_statistically_plausible(self):
        env, channel, _ = make_channel(loss=0.3, seed=5)
        for i in range(10_000):
            channel.send(i)
        env.run()
        assert channel.lost / channel.sent == pytest.approx(0.3, abs=0.02)

    def test_certain_delivery_with_zero_loss(self):
        env, channel, _ = make_channel(loss=0.0)
        assert all(channel.send(i) for i in range(50))

    def test_send_returns_false_on_drop(self):
        env, channel, _ = make_channel(loss=0.999999, seed=9)
        outcomes = [channel.send(i) for i in range(20)]
        assert not any(outcomes)


class TestNonReordering:
    def test_exponential_delays_do_not_reorder(self):
        env, channel, received = make_channel(
            delay=0.5, discipline=TimerDiscipline.EXPONENTIAL, seed=11
        )
        for i in range(500):
            channel.send(i)
        env.run()
        payloads = [m.payload for m in received]
        assert payloads == sorted(payloads)

    def test_delivery_times_monotone(self):
        env, channel, received = make_channel(
            delay=0.5, discipline=TimerDiscipline.EXPONENTIAL, seed=13
        )

        def staggered(env):
            for i in range(200):
                channel.send(i)
                yield env.timeout(0.01)

        env.process(staggered(env))
        env.run()
        times = [m.delivered_at for m in received]
        assert times == sorted(times)

    @given(seed=st.integers(0, 2**16), loss=st.floats(0.0, 0.8))
    @settings(max_examples=25, deadline=None)
    def test_fifo_property_random_channels(self, seed, loss):
        env, channel, received = make_channel(
            loss=loss, delay=0.2, discipline=TimerDiscipline.EXPONENTIAL, seed=seed
        )
        for i in range(100):
            channel.send(i)
        env.run()
        payloads = [m.payload for m in received]
        assert payloads == sorted(payloads)


class TestEdgeCases:
    def test_certain_loss_drops_everything(self):
        env, channel, received = make_channel(loss=1.0)
        outcomes = [channel.send(i) for i in range(100)]
        env.run()
        assert not any(outcomes)
        assert channel.lost == channel.sent == 100
        assert channel.delivered == 0
        assert received == []

    def test_zero_loss_zero_delay_instant_delivery(self):
        env, channel, received = make_channel(loss=0.0, delay=0.0)
        for i in range(20):
            channel.send(i)
        env.run()
        assert [m.payload for m in received] == list(range(20))
        assert all(m.delivered_at == m.sent_at == 0.0 for m in received)

    def test_zero_delay_preserves_send_order(self):
        env, channel, received = make_channel(loss=0.0, delay=0.0)

        def staggered(env):
            for i in range(50):
                channel.send(i)
                if i % 7 == 0:
                    yield env.timeout(0.5)

        env.process(staggered(env))
        env.run()
        payloads = [m.payload for m in received]
        assert payloads == sorted(payloads)

    def test_certain_loss_with_zero_delay(self):
        env, channel, received = make_channel(loss=1.0, delay=0.0)
        assert not channel.send("x")
        env.run()
        assert received == []


class TestDownFlag:
    def test_down_channel_loses_deterministically(self):
        env, channel, received = make_channel(loss=0.0)
        channel.down = True
        outcomes = [channel.send(i) for i in range(10)]
        env.run()
        assert not any(outcomes)
        assert channel.lost == 10
        assert received == []

    def test_down_drops_consume_no_randomness(self):
        """A link outage must not shift the loss stream of later traffic."""

        def run(down_sends: int) -> list[bool]:
            env, channel, _ = make_channel(loss=0.4, seed=23)
            channel.down = True
            for i in range(down_sends):
                channel.send(("outage", i))
            channel.down = False
            return [channel.send(i) for i in range(200)]

        # The post-outage loss pattern is identical no matter how much
        # traffic the outage swallowed.
        assert run(0) == run(1) == run(17)

    def test_down_drops_do_not_fire_on_loss(self):
        env = Environment()
        lost = []
        channel = Channel(
            env,
            ChannelConfig(loss_rate=0.0, mean_delay=0.1),
            RandomStreams(29).stream("chan"),
            lambda m: None,
            on_loss=lost.append,
        )
        channel.down = True
        channel.send("x")
        env.run()
        assert channel.lost == 1
        assert lost == []


class TestGilbertElliottProcess:
    @staticmethod
    def make_process(**overrides):
        kwargs = dict(
            loss_good=0.0,
            loss_bad=0.2,
            good_to_bad=0.1,
            bad_to_good=1.0,
            rng=RandomStreams(31).stream("gilbert-channel"),
        )
        kwargs.update(overrides)
        return GilbertElliottProcess(**kwargs)

    def test_validation(self):
        with pytest.raises(ValueError, match="loss_good"):
            self.make_process(loss_good=-0.1)
        with pytest.raises(ValueError, match="loss_bad"):
            self.make_process(loss_bad=1.5)
        with pytest.raises(ValueError, match="good_to_bad"):
            self.make_process(good_to_bad=-1.0)
        with pytest.raises(ValueError, match="bad_to_good"):
            self.make_process(bad_to_good=-1.0)

    def test_zero_rates_pin_the_good_state(self):
        process = self.make_process(good_to_bad=0.0, bad_to_good=0.0)
        for t in (0.0, 1.0, 1e6):
            assert not process.is_bad(t)
            assert process.loss_rate_at(t) == 0.0

    def test_absorbing_bad_state(self):
        # With no return rate, the first flip strands the channel bad.
        process = self.make_process(good_to_bad=10.0, bad_to_good=0.0)
        assert process.is_bad(1e6)
        assert process.loss_rate_at(1e9) == 0.2

    def test_queries_are_monotone_consistent(self):
        # Re-querying the same instant does not advance the process.
        process = self.make_process()
        first = process.loss_rate_at(5.0)
        assert process.loss_rate_at(5.0) == first
        assert process.is_bad(5.0) == (first == 0.2)


class TestGilbertDegeneracy:
    """A degenerate modulator must be invisible, bit for bit."""

    @staticmethod
    def run_channel(loss_process, seed=37, n=500):
        env = Environment()
        received = []
        channel = Channel(
            env,
            ChannelConfig(
                loss_rate=0.15,
                mean_delay=0.2,
                delay_discipline=TimerDiscipline.EXPONENTIAL,
            ),
            RandomStreams(seed).stream("chan"),
            received.append,
            loss_process=loss_process,
        )

        def source(env):
            for i in range(n):
                channel.send(i)
                yield env.timeout(0.05)

        env.process(source(env))
        env.run()
        return channel, received

    def test_degenerate_process_matches_iid_bit_for_bit(self):
        # Same per-state loss as the config's i.i.d. rate: the channel
        # consumes the identical draws from the identical stream, so
        # every delivery record matches exactly.
        degenerate = GilbertElliottProcess(
            0.15, 0.15, 0.5, 2.0, RandomStreams(41).stream("gilbert-channel")
        )
        iid_channel, iid_received = self.run_channel(None)
        ge_channel, ge_received = self.run_channel(degenerate)
        assert ge_received == iid_received
        assert (ge_channel.sent, ge_channel.lost, ge_channel.delivered) == (
            iid_channel.sent,
            iid_channel.lost,
            iid_channel.delivered,
        )

    def test_bursty_process_diverges_from_iid(self):
        bursty = GilbertElliottProcess(
            0.0, 1.0, 0.5, 2.0, RandomStreams(41).stream("gilbert-channel")
        )
        iid_channel, _ = self.run_channel(None)
        ge_channel, _ = self.run_channel(bursty)
        assert ge_channel.lost != iid_channel.lost


class TestLossHook:
    def test_on_loss_reports_lost_payloads(self):
        env = Environment()
        received, lost = [], []
        channel = Channel(
            env,
            ChannelConfig(loss_rate=0.5, mean_delay=0.1),
            RandomStreams(17).stream("chan"),
            received.append,
            on_loss=lost.append,
        )
        for i in range(300):
            channel.send(i)
        env.run()
        assert len(lost) == channel.lost
        assert set(lost) | {m.payload for m in received} == set(range(300))

    def test_loss_notification_arrives_after_delay(self):
        env = Environment()
        events = []
        channel = Channel(
            env,
            ChannelConfig(loss_rate=0.9999999, mean_delay=0.3),
            RandomStreams(19).stream("chan"),
            lambda m: events.append(("delivered", env.now)),
            on_loss=lambda p: events.append(("lost", env.now)),
        )
        channel.send("x")
        env.run()
        assert events == [("lost", 0.3)]
