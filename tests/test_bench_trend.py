"""The committed benchmark trend series and the tool that feeds it.

``benchmarks/TREND.csv`` is a reviewable performance trajectory: the
nightly bench job appends one row per benchmark via
``tools/bench_trend.py`` and the rows are committed back.  Tier-1
guards the contract: the schema never drifts, the committed series is
non-empty, and the appender stays idempotent per (commit, test).
"""

from __future__ import annotations

import csv
import datetime
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools import bench_trend

TREND = REPO_ROOT / "benchmarks" / "TREND.csv"


def _rows():
    with TREND.open(newline="") as handle:
        reader = csv.DictReader(handle)
        assert tuple(reader.fieldnames) == bench_trend.FIELDS
        return list(reader)


class TestCommittedSeries:
    def test_schema_and_rows(self):
        rows = _rows()
        assert len(rows) >= 3, "the committed trend series must not be empty"
        for row in rows:
            datetime.date.fromisoformat(row["date"])
            assert row["commit"]
            assert row["file"].startswith("benchmarks/test_bench_")
            assert row["test"].startswith("test_bench_")
            assert float(row["median_seconds"]) > 0

    def test_no_duplicate_commit_test_pairs(self):
        keys = [(row["commit"], row["test"]) for row in _rows()]
        assert len(keys) == len(set(keys))

    def test_issue10_benches_are_recorded(self):
        files = {row["file"] for row in _rows()}
        assert "benchmarks/test_bench_chain_kernel.py" in files
        assert "benchmarks/test_bench_sim_vectorized.py" in files


class TestAppender:
    def _report(self, tmp_path, commit="abc123", name="test_bench_thing"):
        report = {
            "datetime": "2026-08-07T03:17:00",
            "commit_info": {"id": commit},
            "benchmarks": [
                {
                    "fullname": f"benchmarks/test_bench_thing.py::{name}",
                    "name": name,
                    "stats": {"median": 0.0123},
                }
            ],
        }
        path = tmp_path / f"BENCH_{commit}_{name}.json"
        path.write_text(json.dumps(report))
        return path

    def test_appends_and_stays_idempotent(self, tmp_path):
        report = self._report(tmp_path)
        trend = tmp_path / "TREND.csv"
        assert bench_trend.main([str(report), "--trend", str(trend)]) == 0
        first = trend.read_text()
        assert bench_trend.main([str(report), "--trend", str(trend)]) == 0
        assert trend.read_text() == first
        rows = list(csv.DictReader(first.splitlines()))
        assert len(rows) == 1
        assert rows[0]["commit"] == "abc123"
        assert rows[0]["median_seconds"] == "0.0123"

    def test_new_commit_appends_new_row(self, tmp_path):
        trend = tmp_path / "TREND.csv"
        bench_trend.main([str(self._report(tmp_path)), "--trend", str(trend)])
        bench_trend.main(
            [str(self._report(tmp_path, commit="def456")), "--trend", str(trend)]
        )
        rows = list(csv.DictReader(trend.read_text().splitlines()))
        assert [row["commit"] for row in rows] == ["abc123", "def456"]
