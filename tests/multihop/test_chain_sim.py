"""Integration tests: multi-hop chain simulation vs the multi-hop model."""

from __future__ import annotations

import pytest

from repro.core.multihop import MultiHopModel
from repro.core.protocols import Protocol
from repro.multihop.chain import MultiHopSimulation, simulate_multihop_replications
from repro.multihop.config import MultiHopSimConfig


def run_chain(protocol, params, horizon=4000.0, warmup=200.0, seed=101):
    config = MultiHopSimConfig(
        protocol=protocol, params=params, horizon=horizon, warmup=warmup, seed=seed
    )
    return MultiHopSimulation(config).run()


class TestMechanics:
    def test_result_shape(self, multihop_params):
        result = run_chain(Protocol.SS, multihop_params, horizon=1000.0)
        assert result.hops == multihop_params.hops
        assert len(result.hop_inconsistent_time) == multihop_params.hops
        assert result.measured_time == pytest.approx(800.0)

    def test_message_counting_positive(self, multihop_params):
        result = run_chain(Protocol.SS, multihop_params, horizon=1000.0)
        assert result.link_transmissions > 0
        assert result.message_rate > 0

    def test_hop_bounds(self, multihop_params):
        result = run_chain(Protocol.SS, multihop_params, horizon=500.0)
        with pytest.raises(ValueError):
            result.hop_inconsistency(0)
        with pytest.raises(ValueError):
            result.hop_inconsistency(multihop_params.hops + 1)

    def test_reproducible(self, multihop_params):
        a = run_chain(Protocol.SS_RT, multihop_params, horizon=800.0, seed=9)
        b = run_chain(Protocol.SS_RT, multihop_params, horizon=800.0, seed=9)
        assert a.inconsistency_ratio == b.inconsistency_ratio
        assert a.link_transmissions == b.link_transmissions

    def test_config_validation(self, multihop_params):
        with pytest.raises(ValueError):
            MultiHopSimConfig(protocol=Protocol.SS_ER, params=multihop_params)
        with pytest.raises(ValueError):
            MultiHopSimConfig(
                protocol=Protocol.SS, params=multihop_params, horizon=-1.0
            )
        with pytest.raises(ValueError):
            MultiHopSimConfig(
                protocol=Protocol.SS, params=multihop_params, horizon=10.0, warmup=20.0
            )

    def test_lossless_chain_nearly_consistent(self, multihop_params):
        lossless = multihop_params.replace(
            loss_rate=0.0, external_false_signal_rate=0.0
        )
        result = run_chain(Protocol.SS, lossless, horizon=2000.0)
        # Only update-propagation windows (N*Delta every ~60s) remain.
        assert result.inconsistency_ratio < 0.02


class TestModelAgreement:
    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_inconsistency_matches_model(self, protocol, multihop_params):
        # Average a few replications rather than trusting one run: the
        # deterministic-timer bias is systematic (~-25% on I for soft
        # state) while single-run noise is comparable to the margin.
        model = MultiHopModel(protocol, multihop_params).solve()
        config = MultiHopSimConfig(
            protocol=protocol, params=multihop_params,
            horizon=8000.0, warmup=200.0, seed=101,
        )
        mean = simulate_multihop_replications(config, 4).mean("inconsistency_ratio")
        assert mean == pytest.approx(model.inconsistency_ratio, rel=0.4, abs=1e-3)

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_message_rate_matches_model(self, protocol, multihop_params):
        model = MultiHopModel(protocol, multihop_params).solve()
        config = MultiHopSimConfig(
            protocol=protocol, params=multihop_params,
            horizon=8000.0, warmup=200.0, seed=101,
        )
        mean = simulate_multihop_replications(config, 4).mean("message_rate")
        assert mean == pytest.approx(model.message_rate, rel=0.35)

    def test_hop_profile_monotone_in_simulation(self, multihop_params):
        result = run_chain(Protocol.SS, multihop_params, horizon=8000.0)
        profile = result.hop_profile()
        # Allow small statistical wiggle while requiring overall growth.
        assert profile[-1] > profile[0]
        for a, b in zip(profile, profile[1:]):
            assert b >= a - 0.002

    def test_protocol_ordering_preserved(self, multihop_params):
        results = {
            protocol: run_chain(protocol, multihop_params, horizon=6000.0)
            for protocol in Protocol.multihop_family()
        }
        assert (
            results[Protocol.SS_RT].inconsistency_ratio
            < results[Protocol.SS].inconsistency_ratio
        )
        assert (
            results[Protocol.HS].message_rate < results[Protocol.SS].message_rate
        )


class TestReplications:
    def test_metrics_collected(self, multihop_params):
        config = MultiHopSimConfig(
            protocol=Protocol.SS,
            params=multihop_params,
            horizon=600.0,
            warmup=100.0,
            seed=1,
        )
        results = simulate_multihop_replications(config, replications=3)
        assert results.count("inconsistency_ratio") == 3
        assert results.count("message_rate") == 3
        assert results.count("last_hop_inconsistency") == 3

    def test_invalid_replications(self, multihop_params):
        config = MultiHopSimConfig(
            protocol=Protocol.SS, params=multihop_params, horizon=600.0
        )
        with pytest.raises(ValueError):
            simulate_multihop_replications(config, replications=0)
