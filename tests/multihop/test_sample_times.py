"""Consistency-grid sampling through the chain and tree harnesses."""

from __future__ import annotations

import pytest

from repro.core.multihop import Topology
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.faults import FaultSchedule, NodeCrash
from repro.multihop import MultiHopSimConfig, TreeSimulation
from repro.multihop.chain import MultiHopSimulation


def chain_config(**overrides):
    params = reservation_defaults().replace(hops=3)
    defaults = dict(
        protocol=Protocol.SS, params=params, horizon=400.0, warmup=0.0, seed=71
    )
    defaults.update(overrides)
    return MultiHopSimConfig(**defaults)


class TestConfigValidation:
    def test_unsorted_sample_times_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            chain_config(sample_times=(5.0, 1.0))

    def test_sample_times_outside_horizon_rejected(self):
        with pytest.raises(ValueError):
            chain_config(sample_times=(500.0,))
        with pytest.raises(ValueError):
            chain_config(sample_times=(-1.0,))


class TestChainSampling:
    def test_one_sample_per_grid_time(self):
        grid = (10.0, 50.0, 100.0, 399.0)
        result = MultiHopSimulation(chain_config(sample_times=grid)).run()
        assert len(result.consistency_samples) == len(grid)
        assert all(s in (0.0, 1.0) for s in result.consistency_samples)

    def test_no_grid_no_samples(self):
        result = MultiHopSimulation(chain_config()).run()
        assert result.consistency_samples == ()

    def test_same_seed_same_samples(self):
        grid = tuple(float(t) for t in range(10, 390, 20))
        first = MultiHopSimulation(chain_config(sample_times=grid)).run()
        second = MultiHopSimulation(chain_config(sample_times=grid)).run()
        assert first.consistency_samples == second.consistency_samples

    def test_crash_downtime_samples_zero(self):
        # The crashed node holds no state, so the any-hop consistency
        # indicator is down for the whole outage — deterministically.
        faults = FaultSchedule(
            crashes=(NodeCrash(node=3, at=100.0, restart_after=50.0),)
        )
        grid = (110.0, 130.0, 149.0)
        result = MultiHopSimulation(
            chain_config(sample_times=grid, faults=faults)
        ).run()
        assert result.consistency_samples == (0.0, 0.0, 0.0)

    def test_sample_at_crash_instant_sees_the_crash(self):
        # FIFO tie-break: the fault process is registered before the
        # sampler, so a sample exactly at the crash instant observes
        # the post-crash state.
        faults = FaultSchedule(
            crashes=(NodeCrash(node=3, at=100.0, restart_after=50.0),)
        )
        result = MultiHopSimulation(
            chain_config(sample_times=(100.0,), faults=faults)
        ).run()
        assert result.consistency_samples == (0.0,)


class TestTreeSampling:
    def test_tree_grid_sampled(self):
        topology = Topology.kary(2, 2)
        params = reservation_defaults().replace(hops=topology.num_edges)
        config = MultiHopSimConfig(
            protocol=Protocol.SS,
            params=params,
            horizon=300.0,
            warmup=0.0,
            seed=13,
            sample_times=(50.0, 150.0, 299.0),
        )
        result = TreeSimulation(config, topology).run()
        assert len(result.consistency_samples) == 3
        assert all(s in (0.0, 1.0) for s in result.consistency_samples)
