"""The per-edge-channel tree simulation harness.

Chain-sim agreement is tolerance-band territory (deterministic timers
carry a documented bias), so these tests prefer structural and
deterministic assertions: lossless propagation, reproducibility under
one seed, conservation of the per-link transmission count, and coarse
agreement with the analytic tree model where the bands are wide.
"""

import pytest

from repro.core.multihop import Topology, TreeModel
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.multihop import (
    MultiHopSimConfig,
    TreeSimulation,
    simulate_tree_replications,
)

BINARY = Topology.kary(2, 2)


def config_for(topology, protocol=Protocol.SS, horizon=2000.0, **overrides):
    params = reservation_defaults().replace(hops=topology.num_edges, **overrides)
    return MultiHopSimConfig(
        protocol=protocol, params=params, horizon=horizon, warmup=100.0
    )


class TestStructure:
    def test_hops_must_match_topology(self):
        with pytest.raises(ValueError, match="edge count"):
            TreeSimulation(
                MultiHopSimConfig(
                    protocol=Protocol.SS, params=reservation_defaults()
                ),
                BINARY,
            )

    def test_result_shapes(self):
        result = TreeSimulation(config_for(BINARY, horizon=500.0), BINARY).run()
        assert result.topology == BINARY
        assert len(result.node_inconsistent_time) == BINARY.num_edges
        assert len(result.leaf_profile()) == BINARY.num_leaves
        assert result.measured_time == pytest.approx(400.0)
        with pytest.raises(ValueError):
            result.node_inconsistency(0)

    def test_same_seed_reproduces_exactly(self):
        config = config_for(BINARY, protocol=Protocol.SS_RT, horizon=800.0)
        first = TreeSimulation(config, BINARY).run()
        second = TreeSimulation(config, BINARY).run()
        assert first.link_transmissions == second.link_transmissions
        assert first.any_leaf_inconsistent_time == second.any_leaf_inconsistent_time
        assert first.node_inconsistent_time == second.node_inconsistent_time

    def test_different_seeds_differ(self):
        config = config_for(BINARY, horizon=800.0)
        first = TreeSimulation(config, BINARY).run()
        second = TreeSimulation(config.replace(seed=config.seed + 1), BINARY).run()
        assert first.link_transmissions != second.link_transmissions


class TestLossless:
    @pytest.mark.parametrize("protocol", Protocol.multihop_family(), ids=lambda p: p.value)
    def test_leaves_track_the_sender(self, protocol):
        config = config_for(
            BINARY,
            protocol=protocol,
            horizon=3000.0,
            loss_rate=0.0,
            external_false_signal_rate=0.0,
        )
        result = TreeSimulation(config, BINARY).run()
        # Without losses or false signals the only inconsistency is the
        # propagation delay after each Poisson update: ~ depth * delay
        # per update, a small fraction of the horizon.
        assert result.inconsistency_ratio < 0.02
        assert result.link_transmissions > 0

    def test_refresh_traffic_counts_every_edge(self):
        # SS with no updates: traffic is the periodic refresh flood,
        # one transmission per edge per refresh interval.
        config = config_for(
            BINARY,
            horizon=1100.0,
            loss_rate=0.0,
            update_rate=1e-9,
        )
        result = TreeSimulation(config, BINARY).run()
        expected = BINARY.num_edges / config.params.refresh_interval
        assert result.message_rate == pytest.approx(expected, rel=0.1)


class TestAgreement:
    def test_message_rate_tracks_model_binary(self):
        topology = BINARY
        config = config_for(topology, protocol=Protocol.SS_RT, horizon=4000.0)
        replications = simulate_tree_replications(topology=topology, config=config, replications=3)
        model = TreeModel(
            Protocol.SS_RT, config.params, topology
        ).solve()
        interval = replications.interval("message_rate")
        # Wide band: deterministic timers and hop-local ACK details.
        assert interval.mean == pytest.approx(model.message_rate, rel=0.25)

    def test_mean_leaf_inconsistency_recorded(self):
        config = config_for(BINARY, horizon=1500.0)
        replications = simulate_tree_replications(config, BINARY, replications=2)
        assert "mean_leaf_inconsistency" in replications.metrics()
        assert replications.interval("inconsistency_ratio").mean >= 0.0

    def test_replications_validated(self):
        with pytest.raises(ValueError):
            simulate_tree_replications(config_for(BINARY), BINARY, replications=0)


class TestHardState:
    def test_false_signals_purge_and_recover(self):
        config = config_for(
            BINARY,
            protocol=Protocol.HS,
            horizon=4000.0,
            external_false_signal_rate=0.01,
        )
        simulation = TreeSimulation(config, BINARY)
        result = simulation.run()
        removals = sum(
            node.false_signal_removals for node in simulation.nodes.values()
        )
        assert removals > 0
        # The system recovers: inconsistency stays far from 1.
        assert result.inconsistency_ratio < 0.5
