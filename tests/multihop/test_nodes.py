"""Unit tests for chain sender and relay nodes over scripted pipes."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.multihop.nodes import ChainSender, RelayNode
from repro.protocols.messages import Message, MessageKind
from repro.sim.engine import Environment
from repro.sim.randomness import RandomStreams, Timer, TimerDiscipline

R, T, K, DELAY = 5.0, 15.0, 0.5, 0.03


class NodeHarness:
    """One relay wired to inspectable upstream/downstream sinks."""

    def __init__(self, protocol: Protocol, is_last=False, drop_down: int = 0):
        self.env = Environment()
        streams = RandomStreams(2)
        self.down: list[Message] = []
        self.up: list[Message] = []
        self._drop_down = drop_down

        def timer(mean, key):
            return Timer(mean, TimerDiscipline.DETERMINISTIC, streams.stream(key))

        def downstream(message: Message) -> None:
            self.down.append(message)

        self.node = RelayNode(
            self.env,
            protocol,
            index=1,
            is_last=is_last,
            timeout_timer=timer(T, "t"),
            retransmission_timer=timer(K, "k"),
            transmit_downstream=None if is_last else downstream,
            transmit_upstream=self.up.append,
        )

    def deliver(self, message: Message) -> None:
        self.node.on_message_from_upstream(message)


class TestRelayForwarding:
    def test_trigger_installed_and_forwarded(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        assert harness.node.value == 1
        assert [m.kind for m in harness.down] == [MessageKind.TRIGGER]

    def test_refresh_forwarded_best_effort(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.deliver(Message(MessageKind.REFRESH, 1, 1))
        kinds = [m.kind for m in harness.down]
        assert kinds == [MessageKind.TRIGGER, MessageKind.REFRESH]

    def test_last_node_does_not_forward(self):
        harness = NodeHarness(Protocol.SS, is_last=True)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        assert harness.node.value == 1
        assert harness.down == []

    def test_stale_message_ignored(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 5, 5))
        harness.deliver(Message(MessageKind.REFRESH, 3, 3))
        assert harness.node.value == 5
        assert len(harness.down) == 1  # stale refresh not forwarded

    def test_wiring_validation(self):
        env = Environment()
        streams = RandomStreams(3)
        timer = Timer(1.0, TimerDiscipline.DETERMINISTIC, streams.stream("x"))
        with pytest.raises(ValueError):
            RelayNode(
                env,
                Protocol.SS,
                index=1,
                is_last=True,
                timeout_timer=timer,
                retransmission_timer=timer,
                transmit_downstream=lambda m: None,  # last node with downstream
                transmit_upstream=lambda m: None,
            )


class TestRelayTimeout:
    def test_state_expires_without_refreshes(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.env.run(until=T + 1e-6)
        assert harness.node.value is None
        assert harness.node.timeout_removals == 1

    def test_refresh_restarts_timeout(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))

        def refresher(env):
            while True:
                yield env.timeout(R)
                harness.deliver(Message(MessageKind.REFRESH, 1, 1))

        harness.env.process(refresher(harness.env))
        harness.env.run(until=4 * T)
        assert harness.node.value == 1

    def test_ss_rt_timeout_notifies_upstream(self):
        harness = NodeHarness(Protocol.SS_RT)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.env.run(until=T + 1e-6)
        assert MessageKind.NOTIFY in [m.kind for m in harness.up]

    def test_ss_timeout_does_not_notify(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.env.run(until=T + 1e-6)
        assert MessageKind.NOTIFY not in [m.kind for m in harness.up]

    def test_hs_never_times_out(self):
        harness = NodeHarness(Protocol.HS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.env.run(until=100 * T)
        assert harness.node.value == 1


class TestHopReliability:
    def test_trigger_acked_upstream(self):
        harness = NodeHarness(Protocol.SS_RT)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        assert [m.kind for m in harness.up] == [MessageKind.ACK]

    def test_ss_does_not_ack(self):
        harness = NodeHarness(Protocol.SS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        assert harness.up == []

    def test_unacked_forward_retransmitted(self):
        harness = NodeHarness(Protocol.SS_RT)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.env.run(until=2 * K + 1e-6)
        triggers = [m for m in harness.down if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 3  # original + 2 retransmissions
        assert triggers[1].retransmission

    def test_downstream_ack_stops_retransmission(self):
        harness = NodeHarness(Protocol.SS_RT)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.node.on_message_from_downstream(Message(MessageKind.ACK, 1))
        harness.env.run(until=10 * K)
        triggers = [m for m in harness.down if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 1

    def test_hop_notify_reinstalls_neighbor(self):
        harness = NodeHarness(Protocol.SS_RT)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.node.on_message_from_downstream(Message(MessageKind.ACK, 1))
        before = len([m for m in harness.down if m.kind is MessageKind.TRIGGER])
        harness.node.on_message_from_downstream(Message(MessageKind.NOTIFY, 1))
        after = len([m for m in harness.down if m.kind is MessageKind.TRIGGER])
        assert after == before + 1


class TestHsFailureFlood:
    def test_false_remove_floods_both_directions(self):
        harness = NodeHarness(Protocol.HS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.node.on_message_from_downstream(Message(MessageKind.ACK, 1))
        harness.node.false_remove()
        assert harness.node.value is None
        assert MessageKind.NOTIFY in [m.kind for m in harness.up]
        assert MessageKind.REMOVAL in [m.kind for m in harness.down]

    def test_notify_purges_and_propagates_upstream(self):
        harness = NodeHarness(Protocol.HS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.node.on_message_from_downstream(Message(MessageKind.NOTIFY, 1))
        assert harness.node.value is None
        assert MessageKind.NOTIFY in [m.kind for m in harness.up]

    def test_removal_flood_purges_and_propagates_downstream(self):
        harness = NodeHarness(Protocol.HS)
        harness.deliver(Message(MessageKind.TRIGGER, 1, 1))
        harness.node.on_message_from_upstream(Message(MessageKind.REMOVAL, 1))
        assert harness.node.value is None
        assert MessageKind.REMOVAL in [m.kind for m in harness.down]


class TestChainSender:
    def make_sender(self, protocol):
        env = Environment()
        streams = RandomStreams(4)
        sent: list[Message] = []
        sender = ChainSender(
            env,
            protocol,
            refresh_timer=Timer(R, TimerDiscipline.DETERMINISTIC, streams.stream("r")),
            retransmission_timer=Timer(
                K, TimerDiscipline.DETERMINISTIC, streams.stream("k")
            ),
            transmit_downstream=sent.append,
        )
        return env, sender, sent

    def test_start_sends_initial_trigger(self):
        env, sender, sent = self.make_sender(Protocol.SS)
        sender.start()
        assert [m.kind for m in sent] == [MessageKind.TRIGGER]

    def test_double_start_rejected(self):
        env, sender, sent = self.make_sender(Protocol.SS)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()

    def test_refreshes_flow(self):
        env, sender, sent = self.make_sender(Protocol.SS)
        sender.start()
        env.run(until=3 * R + 1e-6)
        refreshes = [m for m in sent if m.kind is MessageKind.REFRESH]
        assert len(refreshes) == 3

    def test_update_bumps_version(self):
        env, sender, sent = self.make_sender(Protocol.SS)
        sender.start()
        sender.update()
        assert sender.version == 2
        triggers = [m for m in sent if m.kind is MessageKind.TRIGGER]
        assert triggers[-1].version == 2

    def test_hs_retransmits_until_acked(self):
        env, sender, sent = self.make_sender(Protocol.HS)
        sender.start()
        env.run(until=K + 1e-6)
        triggers = [m for m in sent if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 2
        sender.on_message(Message(MessageKind.ACK, 1))
        env.run(until=10 * K)
        triggers = [m for m in sent if m.kind is MessageKind.TRIGGER]
        assert len(triggers) == 2

    def test_notify_re_triggers(self):
        env, sender, sent = self.make_sender(Protocol.HS)
        sender.start()
        sender.on_message(Message(MessageKind.ACK, 1))
        before = len([m for m in sent if m.kind is MessageKind.TRIGGER])
        sender.on_message(Message(MessageKind.NOTIFY, 1))
        after = len([m for m in sent if m.kind is MessageKind.TRIGGER])
        assert after == before + 1
