"""Fault injection in the chain and tree harnesses.

Covers the three contracts of :mod:`repro.faults` at the simulator
level: degenerate Gilbert-Elliott channels are bit-identical to the
i.i.d. baseline, fault schedules are deterministic (same seed + same
schedule = same result), and injected faults actually degrade
consistency relative to an undisturbed run.
"""

from __future__ import annotations

import pytest

from repro.core.multihop import Topology
from repro.core.parameters import reservation_defaults
from repro.core.protocols import Protocol
from repro.faults import FaultSchedule, GilbertElliottParameters, LinkFlap, NodeCrash
from repro.multihop import MultiHopSimConfig, TreeSimulation
from repro.multihop.chain import MultiHopSimulation


def chain_config(**overrides):
    params = reservation_defaults().replace(hops=3)
    defaults = dict(
        protocol=Protocol.SS, params=params, horizon=3000.0, warmup=200.0, seed=71
    )
    defaults.update(overrides)
    return MultiHopSimConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize("link", [0, 4])
    def test_flap_link_must_name_a_hop(self, link):
        faults = FaultSchedule(flaps=(LinkFlap(link=link, period=100.0, down_duration=10.0),))
        with pytest.raises(ValueError, match="flap link"):
            chain_config(faults=faults)

    @pytest.mark.parametrize("node", [0, 4])
    def test_crash_node_must_name_a_hop(self, node):
        faults = FaultSchedule(crashes=(NodeCrash(node=node, at=100.0, restart_after=10.0),))
        with pytest.raises(ValueError, match="crash node"):
            chain_config(faults=faults)

    def test_valid_schedule_accepted(self):
        faults = FaultSchedule(
            flaps=(LinkFlap(link=1, period=100.0, down_duration=10.0),),
            crashes=(NodeCrash(node=3, at=100.0, restart_after=10.0),),
        )
        assert chain_config(faults=faults).faults is faults


class TestGilbertChainDegeneracy:
    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_degenerate_channel_bit_identical_to_iid(self, protocol):
        """burstiness=0 must leave every metric untouched, exactly."""
        degenerate = GilbertElliottParameters.matched_average(0.02, 0.0)
        baseline = MultiHopSimulation(chain_config(protocol=protocol)).run()
        modulated = MultiHopSimulation(
            chain_config(protocol=protocol, gilbert=degenerate)
        ).run()
        assert modulated.inconsistency_ratio == baseline.inconsistency_ratio
        assert modulated.link_transmissions == baseline.link_transmissions
        assert modulated.hop_inconsistent_time == baseline.hop_inconsistent_time

    def test_bursty_channel_diverges(self):
        bursty = GilbertElliottParameters.matched_average(0.02, 1.0)
        baseline = MultiHopSimulation(chain_config()).run()
        modulated = MultiHopSimulation(chain_config(gilbert=bursty)).run()
        assert modulated.link_transmissions != baseline.link_transmissions

    def test_bursty_channel_deterministic(self):
        bursty = GilbertElliottParameters.matched_average(0.02, 0.7)
        first = MultiHopSimulation(chain_config(gilbert=bursty)).run()
        second = MultiHopSimulation(chain_config(gilbert=bursty)).run()
        assert first.inconsistency_ratio == second.inconsistency_ratio
        assert first.link_transmissions == second.link_transmissions


class TestChainFaultSchedules:
    def test_link_flap_degrades_consistency(self):
        # The link is down a third of the time: refreshes die in bulk
        # and downstream state expires, so inconsistency must rise.
        faults = FaultSchedule(
            flaps=(LinkFlap(link=1, period=30.0, down_duration=10.0),)
        )
        baseline = MultiHopSimulation(chain_config()).run()
        flapped = MultiHopSimulation(chain_config(faults=faults)).run()
        assert flapped.inconsistency_ratio > baseline.inconsistency_ratio

    def test_flap_schedule_deterministic(self):
        faults = FaultSchedule(
            flaps=(LinkFlap(link=2, period=50.0, down_duration=5.0),)
        )
        first = MultiHopSimulation(chain_config(faults=faults)).run()
        second = MultiHopSimulation(chain_config(faults=faults)).run()
        assert first.inconsistency_ratio == second.inconsistency_ratio
        assert first.link_transmissions == second.link_transmissions

    def test_flap_does_not_shift_loss_stream(self):
        # Deterministic outage losses consume no randomness, so two
        # different flap schedules still draw the same Bernoulli
        # sequence for the traffic they let through; the run stays
        # exactly reproducible per schedule (asserted above) and the
        # schedule-free baseline is recovered by an empty schedule.
        empty = MultiHopSimulation(chain_config(faults=FaultSchedule())).run()
        baseline = MultiHopSimulation(chain_config()).run()
        assert empty.inconsistency_ratio == baseline.inconsistency_ratio
        assert empty.link_transmissions == baseline.link_transmissions

    def test_node_crash_degrades_consistency(self):
        faults = FaultSchedule(
            crashes=(NodeCrash(node=2, at=1000.0, restart_after=300.0),)
        )
        baseline = MultiHopSimulation(chain_config()).run()
        crashed = MultiHopSimulation(chain_config(faults=faults)).run()
        assert crashed.inconsistency_ratio > baseline.inconsistency_ratio

    def test_crash_schedule_deterministic(self):
        faults = FaultSchedule(
            crashes=(NodeCrash(node=1, at=500.0, restart_after=100.0),)
        )
        first = MultiHopSimulation(chain_config(faults=faults)).run()
        second = MultiHopSimulation(chain_config(faults=faults)).run()
        assert first.inconsistency_ratio == second.inconsistency_ratio


class TestTreeFaults:
    TOPOLOGY = Topology.kary(2, 2)

    def tree_config(self, **overrides):
        params = reservation_defaults().replace(hops=self.TOPOLOGY.num_edges)
        defaults = dict(
            protocol=Protocol.SS, params=params, horizon=2000.0, warmup=100.0, seed=73
        )
        defaults.update(overrides)
        return MultiHopSimConfig(**defaults)

    def test_degenerate_gilbert_bit_identical(self):
        degenerate = GilbertElliottParameters.matched_average(0.02, 0.0)
        baseline = TreeSimulation(self.tree_config(), self.TOPOLOGY).run()
        modulated = TreeSimulation(
            self.tree_config(gilbert=degenerate), self.TOPOLOGY
        ).run()
        assert modulated.inconsistency_ratio == baseline.inconsistency_ratio
        assert modulated.link_transmissions == baseline.link_transmissions

    def test_flap_deterministic_and_degrading(self):
        faults = FaultSchedule(
            flaps=(LinkFlap(link=1, period=30.0, down_duration=10.0),)
        )
        baseline = TreeSimulation(self.tree_config(), self.TOPOLOGY).run()
        first = TreeSimulation(self.tree_config(faults=faults), self.TOPOLOGY).run()
        second = TreeSimulation(self.tree_config(faults=faults), self.TOPOLOGY).run()
        assert first.inconsistency_ratio == second.inconsistency_ratio
        assert first.inconsistency_ratio > baseline.inconsistency_ratio
