"""Tests for timer optimization (the Fig. 7 / Fig. 8a structure)."""

from __future__ import annotations

import pytest

from repro.analysis.optimizer import optimize_refresh_timer, optimize_timers_jointly
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel


class TestRefreshOptimizer:
    def test_ss_optimum_interior_and_near_fig7(self, params):
        best = optimize_refresh_timer(Protocol.SS, params)
        # Fig. 7 puts SS's optimum in the mid-single-digit seconds.
        assert 2.0 < best.refresh_interval < 20.0
        assert best.timeout_multiple == pytest.approx(3.0)

    def test_optimum_beats_neighbors(self, params):
        best = optimize_refresh_timer(Protocol.SS, params)
        for factor in (0.5, 2.0):
            neighbor = params.with_coupled_timers(best.refresh_interval * factor)
            cost = SingleHopModel(Protocol.SS, neighbor).solve().integrated_cost(10.0)
            assert best.cost <= cost + 1e-9

    def test_ss_rtr_prefers_long_timers(self, params):
        ss = optimize_refresh_timer(Protocol.SS, params)
        rtr = optimize_refresh_timer(Protocol.SS_RTR, params)
        assert rtr.refresh_interval > 5.0 * ss.refresh_interval

    def test_rtr_optimum_approaches_hs_cost(self, params):
        rtr = optimize_refresh_timer(Protocol.SS_RTR, params)
        hs = SingleHopModel(Protocol.HS, params).solve().integrated_cost(10.0)
        assert rtr.cost == pytest.approx(hs, rel=0.15)

    def test_weight_moves_optimum(self, params):
        cheap_staleness = optimize_refresh_timer(Protocol.SS, params, weight=1.0)
        dear_staleness = optimize_refresh_timer(Protocol.SS, params, weight=100.0)
        # Expensive inconsistency favors faster refreshes.
        assert dear_staleness.refresh_interval < cheap_staleness.refresh_interval

    def test_invalid_bounds_rejected(self, params):
        with pytest.raises(ValueError):
            optimize_refresh_timer(Protocol.SS, params, bounds=(0.0, 10.0))
        with pytest.raises(ValueError):
            optimize_refresh_timer(Protocol.SS, params, bounds=(5.0, 1.0))


class TestJointOptimizer:
    def test_joint_at_least_as_good_as_fixed_multiple(self, params):
        fixed = optimize_refresh_timer(Protocol.SS, params, timeout_multiple=3.0)
        joint = optimize_timers_jointly(Protocol.SS, params)
        assert joint.cost <= fixed.cost + 1e-9

    def test_ss_rt_prefers_tight_timeout(self, params):
        # Fig. 8a: SS+RT "works best with a timeout timer value that is
        # just slightly larger than that of the state-refresh timer".
        joint = optimize_timers_jointly(Protocol.SS_RT, params)
        assert joint.timeout_multiple <= 2.0

    def test_ss_rtr_prefers_loose_timeout(self, params):
        joint = optimize_timers_jointly(Protocol.SS_RTR, params)
        assert joint.timeout_multiple >= 5.0

    def test_result_fields(self, params):
        best = optimize_timers_jointly(Protocol.SS_ER, params)
        assert best.protocol is Protocol.SS_ER
        assert best.weight == 10.0
        assert best.cost > 0
        assert best.timeout_interval == pytest.approx(
            best.refresh_interval * best.timeout_multiple
        )
