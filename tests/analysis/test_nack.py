"""Tests for the SS+NACK (Raman-McCanne style) extension."""

from __future__ import annotations

import pytest

from repro.analysis.nack import (
    NackSimulation,
    equivalent_ss_rt_params,
    simulate_nack_replications,
)
from repro.core.protocols import Protocol
from repro.core.singlehop import SingleHopModel
from repro.protocols.config import SingleHopSimConfig


class TestConfiguration:
    def test_requires_pure_ss(self, params):
        config = SingleHopSimConfig(protocol=Protocol.SS_RT, params=params, sessions=5)
        with pytest.raises(ValueError):
            NackSimulation(config)

    def test_equivalent_params_use_two_delays(self, params):
        equivalent = equivalent_ss_rt_params(params)
        assert equivalent.retransmission_interval == pytest.approx(2 * params.delay)


class TestBehavior:
    def test_nack_improves_on_ss(self, params):
        summary = simulate_nack_replications(params, sessions=120, replications=3)
        assert summary.improvement() > 0.10

    def test_nacks_are_sent_under_loss(self, params):
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=params, sessions=60, seed=8
        )
        sim = NackSimulation(config)
        sim.run()
        assert sim.nacks_sent > 0
        assert sim.nack_repairs > 0

    def test_no_nacks_without_loss(self, lossless_params):
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=lossless_params, sessions=30, seed=8
        )
        sim = NackSimulation(config)
        sim.run()
        assert sim.nacks_sent == 0

    def test_nack_behaves_like_fast_ss_rt(self, params):
        """The paper's §IV mapping: SS+NACK ~ SS+RT with K ~ 2*Delta."""
        summary = simulate_nack_replications(params, sessions=250, replications=4)
        nack_inconsistency = summary.nack.mean("inconsistency_ratio")
        model_rt = SingleHopModel(
            Protocol.SS_RT, equivalent_ss_rt_params(params)
        ).solve()
        model_ss = SingleHopModel(Protocol.SS, params).solve()
        # NACK must land in the band between fast SS+RT and plain SS,
        # much closer to the former.
        assert nack_inconsistency < 0.8 * model_ss.inconsistency_ratio
        assert nack_inconsistency > 0.5 * model_rt.inconsistency_ratio
