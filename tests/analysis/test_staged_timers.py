"""Tests for the staged-refresh-timer extension (Pan & Schulzrinne)."""

from __future__ import annotations

import pytest

from repro.analysis.staged_timers import (
    StagedRefreshConfig,
    StagedRefreshSimulation,
    compare_staged_refresh,
)
from repro.core.protocols import Protocol
from repro.protocols.config import SingleHopSimConfig
from repro.protocols.messages import MessageKind


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StagedRefreshConfig(fast_interval=0.0)
        with pytest.raises(ValueError):
            StagedRefreshConfig(fast_interval=1.0, fast_count=0)

    def test_requires_pure_ss(self, params):
        config = SingleHopSimConfig(protocol=Protocol.SS_RT, params=params, sessions=5)
        with pytest.raises(ValueError):
            StagedRefreshSimulation(config, StagedRefreshConfig(fast_interval=0.1))


class TestBehavior:
    def test_stage_one_refreshes_are_fast(self, lossless_params):
        # With fast_count=2 and fast_interval=0.2, the first refreshes
        # after setup arrive well before the nominal R=5s.
        config = SingleHopSimConfig(
            protocol=Protocol.SS, params=lossless_params, sessions=1, seed=3
        )
        sim = StagedRefreshSimulation(
            config, StagedRefreshConfig(fast_interval=0.2, fast_count=2)
        )
        result = sim.run()
        # A 1-session run of mean 1800s sends far more refreshes than
        # plain SS would only if staging re-arms per trigger; here we
        # simply check refreshes exist and the run completes.
        assert result.message_counts.get(MessageKind.REFRESH.value, 0) > 0

    def test_staging_improves_consistency_under_loss(self, params):
        lossy = params.replace(loss_rate=0.1)
        comparison = compare_staged_refresh(
            lossy,
            StagedRefreshConfig(fast_interval=2 * lossy.delay, fast_count=3),
            sessions=120,
            replications=3,
        )
        assert comparison.inconsistency_improvement() > 0.15

    def test_staging_cheaper_than_globally_fast_refresh(self, params):
        # The point of staging: near-trigger protection without paying
        # the fast rate forever.  The overhead is bounded by
        # fast_count extra refreshes per trigger (~fast_count*lambda_u),
        # far below what running R = fast_interval globally would cost.
        from repro.core.singlehop import SingleHopModel

        lossy = params.replace(loss_rate=0.1)
        staged_config = StagedRefreshConfig(fast_interval=2 * lossy.delay, fast_count=3)
        comparison = compare_staged_refresh(
            lossy, staged_config, sessions=120, replications=3
        )
        # Bounded by the per-trigger budget...
        trigger_rate = lossy.update_rate + lossy.removal_rate
        plain_rate = comparison.plain_ss.mean("normalized_message_rate")
        budget = staged_config.fast_count * trigger_rate / plain_rate
        assert comparison.overhead_increase() < 1.3 * budget
        # ...and far below a globally fast refresh timer.
        globally_fast = SingleHopModel(
            Protocol.SS, lossy.with_coupled_timers(staged_config.fast_interval)
        ).solve()
        staged_rate = comparison.staged.mean("normalized_message_rate")
        assert staged_rate < 0.1 * globally_fast.normalized_message_rate

    def test_staging_noop_without_loss(self, lossless_params):
        comparison = compare_staged_refresh(
            lossless_params,
            StagedRefreshConfig(fast_interval=0.1, fast_count=2),
            sessions=60,
            replications=2,
        )
        # No losses to repair: consistency basically unchanged.
        assert abs(comparison.inconsistency_improvement()) < 0.10
