"""Tests that the paper's conclusions survive the parameter-decoding
ambiguity (DESIGN.md §5)."""

from __future__ import annotations

from repro.analysis.sensitivity import (
    check_claims,
    default_claims,
    plausible_decodings,
    robustness_report,
)


class TestDecodings:
    def test_reasonable_number_of_candidates(self):
        candidates = plausible_decodings()
        assert len(candidates) == 16

    def test_candidates_are_distinct(self):
        assert len(set(plausible_decodings())) == 16

    def test_contested_fields_vary(self):
        candidates = plausible_decodings()
        assert len({c.update_rate for c in candidates}) == 4
        assert len({c.delay for c in candidates}) == 2


class TestClaims:
    def test_all_claims_hold_on_default_decoding(self, params):
        checks = check_claims([params])
        failing = [c for c in checks if not c.holds]
        assert not failing, [f"{c.claim}: {c.detail}" for c in failing]

    def test_all_claims_hold_across_decodings(self):
        checks = check_claims()
        failing = [c for c in checks if not c.holds]
        assert not failing, [f"{c.claim}: {c.detail}" for c in failing]

    def test_claim_set_covers_headline_findings(self):
        claims = default_claims()
        assert len(claims) == 5
        assert any("explicit removal" in name for name in claims)
        assert any("SS+RTR" in name for name in claims)

    def test_report_mentions_every_claim(self):
        report = robustness_report()
        for claim in default_claims():
            assert claim in report
