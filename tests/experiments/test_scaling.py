"""Tests for the hop-count scaling experiment (heterogeneous paths)."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.experiments import experiment_ids, run_experiment
from repro.experiments.scaling import (
    CLEAN_HOP,
    CONGESTED_EVERY,
    CONGESTED_HOP,
    CONGESTED_OFFSET,
    FAST_HOP_COUNTS,
    HOP_COUNTS,
    heterogeneous_path,
)


class TestHeterogeneousPath:
    def test_deterministic_and_periodic(self):
        path = heterogeneous_path(32)
        assert path == heterogeneous_path(32)
        congested = [i for i, hop in enumerate(path) if hop == CONGESTED_HOP]
        assert congested == list(range(CONGESTED_OFFSET, 32, CONGESTED_EVERY))
        assert all(hop in (CLEAN_HOP, CONGESTED_HOP) for hop in path)

    def test_every_swept_path_is_heterogeneous(self):
        # Every swept path must mix both link kinds, otherwise the short
        # end of the sweep silently degenerates to homogeneous.
        for count in HOP_COUNTS + FAST_HOP_COUNTS:
            assert CONGESTED_HOP in heterogeneous_path(count)
            assert CLEAN_HOP in heterogeneous_path(count)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            heterogeneous_path(0)


class TestScalingExperiment:
    def test_registered(self):
        assert "scaling" in experiment_ids()

    def test_fast_run_shape(self):
        result = run_experiment("scaling", fast=True)
        assert result.experiment_id == "scaling"
        assert [panel.name for panel in result.panels] == [
            "end-to-end inconsistency",
            "per-link message overhead",
        ]
        expected_x = tuple(float(n) for n in FAST_HOP_COUNTS)
        for panel in result.panels:
            assert [s.label for s in panel.series] == [
                p.value for p in Protocol.multihop_family()
            ]
            for series in panel.series:
                assert series.x == expected_x
                assert all(y >= 0.0 for y in series.y)

    def test_fast_sweep_reaches_128_hops(self):
        # The sparse-template regime must stay covered even in fast mode.
        assert max(FAST_HOP_COUNTS) == 128
        assert max(HOP_COUNTS) == 128

    def test_inconsistency_grows_with_path_length(self):
        result = run_experiment("scaling", fast=True)
        panel = result.panel("end-to-end inconsistency")
        for series in panel.series:
            assert list(series.y) == sorted(series.y), (
                f"{series.label}: inconsistency should grow with hop count"
            )
        # Soft state without reliable triggers degrades fastest.
        ss = panel.series_by_label("SS")
        hs = panel.series_by_label("HS")
        assert ss.y[-1] > hs.y[-1]

    def test_probabilities_bounded(self):
        result = run_experiment("scaling", fast=True)
        for series in result.panel("end-to-end inconsistency").series:
            assert all(0.0 <= y <= 1.0 for y in series.y)
