"""Tests that the generated Table I matches the paper's closed forms."""

from __future__ import annotations

import pytest

from repro.core.parameters import SignalingParameters
from repro.core.protocols import Protocol
from repro.experiments.table01 import ROW_LABELS, transition_table

PARAMS = SignalingParameters(
    loss_rate=0.05,
    delay=0.04,
    refresh_interval=6.0,
    timeout_interval=18.0,
    retransmission_interval=0.2,
    external_false_signal_rate=2e-4,
)

P, D = PARAMS.loss_rate, PARAMS.delay
R, T, K = (
    PARAMS.refresh_interval,
    PARAMS.timeout_interval,
    PARAMS.retransmission_interval,
)

#: Table I as printed in the paper, evaluated at PARAMS.
EXPECTED = {
    Protocol.SS: [P / D, (1 - P) / D, (1 - P) / R, 0.0, 1 / T, 0.0, (P ** (T / R)) / T],
    Protocol.SS_ER: [
        P / D,
        (1 - P) / D,
        (1 - P) / R,
        P / D,
        (1 - P) / D,
        1 / T,
        (P ** (T / R)) / T,
    ],
    Protocol.SS_RT: [
        P / D,
        (1 - P) / D,
        (1 / R + 1 / K) * (1 - P),
        0.0,
        1 / T,
        0.0,
        (P ** (T / R)) / T,
    ],
    Protocol.SS_RTR: [
        P / D,
        (1 - P) / D,
        (1 / R + 1 / K) * (1 - P),
        P / D,
        (1 - P) / D,
        1 / T + (1 - P) / K,
        (P ** (T / R)) / T,
    ],
    Protocol.HS: [
        P / D,
        (1 - P) / D,
        (1 - P) / K,
        P / D,
        (1 - P) / D,
        (1 - P) / K,
        2e-4,
    ],
}


@pytest.mark.parametrize("protocol", list(Protocol))
def test_column_matches_paper(protocol):
    table = transition_table(PARAMS)
    for label, expected in zip(ROW_LABELS, EXPECTED[protocol]):
        assert table[protocol][label] == pytest.approx(expected), (protocol, label)


def test_row_count_matches_table1():
    assert len(ROW_LABELS) == 7
