"""Shape checks for every reproduced figure.

Each test asserts a claim the paper makes about the corresponding
figure — who wins, by roughly what factor, where crossovers fall.
EXPERIMENTS.md cites this module as the machine-checked record of
paper-vs-measured agreement.  Analytic experiments run at full
resolution (they are cheap); the simulation-backed figures (11, 12)
are covered separately in test_validation_figures.py.
"""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.experiments import run_experiment

SS, SS_ER, SS_RT, SS_RTR, HS = (p.value for p in Protocol)


@pytest.fixture(scope="module")
def fig4():
    return run_experiment("fig4")


@pytest.fixture(scope="module")
def fig5():
    return run_experiment("fig5")


@pytest.fixture(scope="module")
def fig6():
    return run_experiment("fig6")


@pytest.fixture(scope="module")
def fig7():
    return run_experiment("fig7")


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8")


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9")


@pytest.fixture(scope="module")
def fig10():
    return run_experiment("fig10")


@pytest.fixture(scope="module")
def fig17():
    return run_experiment("fig17")


@pytest.fixture(scope="module")
def fig18():
    return run_experiment("fig18")


@pytest.fixture(scope="module")
def fig19():
    return run_experiment("fig19")


def decreasing(values, tolerance=0.0):
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def increasing(values, tolerance=0.0):
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


class TestTable1:
    def test_columns_cover_all_protocols(self):
        result = run_experiment("table1")
        assert result.panel("transition rates").labels() == tuple(
            p.value for p in Protocol
        )

    def test_hs_never_uses_soft_timers(self):
        result = run_experiment("table1")
        panel = result.panel("transition rates")
        hs = panel.series_by_label(HS)
        ss = panel.series_by_label(SS)
        # Row 2 (slow-path recovery): HS uses K, SS uses R -> different.
        assert hs.y[2] != ss.y[2]


class TestFig4:
    def test_inconsistency_decreases_with_session_length(self, fig4):
        for series in fig4.panel("a: inconsistency ratio").series:
            assert decreasing(series.y, tolerance=1e-9), series.label

    def test_message_rate_decreases_with_session_length(self, fig4):
        for series in fig4.panel("b: signaling message rate").series:
            assert decreasing(series.y, tolerance=1e-9), series.label

    def test_er_gain_grows_as_sessions_shrink(self, fig4):
        panel = fig4.panel("a: inconsistency ratio")
        ss = panel.series_by_label(SS)
        er = panel.series_by_label(SS_ER)
        gain_short = ss.y[0] / er.y[0]  # shortest sessions
        gain_long = ss.y[-1] / er.y[-1]  # longest sessions
        assert gain_short > gain_long
        assert gain_short > 3.0  # substantial at high churn

    def test_er_overhead_negligible_for_long_sessions(self, fig4):
        panel = fig4.panel("b: signaling message rate")
        ss = panel.series_by_label(SS)
        er = panel.series_by_label(SS_ER)
        assert er.y[-1] == pytest.approx(ss.y[-1], rel=0.02)

    def test_long_sessions_split_by_trigger_reliability(self, fig4):
        panel = fig4.panel("a: inconsistency ratio")
        reliable = [SS_RT, SS_RTR, HS]
        unreliable = [SS, SS_ER]
        worst_reliable = max(panel.series_by_label(s).y[-1] for s in reliable)
        best_unreliable = min(panel.series_by_label(s).y[-1] for s in unreliable)
        assert worst_reliable < best_unreliable

    def test_short_sessions_split_by_removal_mechanism(self, fig4):
        panel = fig4.panel("a: inconsistency ratio")
        assert panel.series_by_label(SS).y[0] == pytest.approx(
            panel.series_by_label(SS_RT).y[0], rel=0.25
        )
        assert panel.series_by_label(SS_ER).y[0] < 0.3 * panel.series_by_label(SS).y[0]
        assert (
            panel.series_by_label(SS_RTR).y[0] < 0.5 * panel.series_by_label(SS_ER).y[0]
        )

    def test_rtr_tracks_hs_everywhere(self, fig4):
        panel = fig4.panel("a: inconsistency ratio")
        rtr = panel.series_by_label(SS_RTR)
        hs = panel.series_by_label(HS)
        for r, h in zip(rtr.y, hs.y):
            assert r == pytest.approx(h, rel=0.25)

    def test_rtr_sometimes_beats_hs(self, fig4):
        panel = fig4.panel("a: inconsistency ratio")
        rtr = panel.series_by_label(SS_RTR)
        hs = panel.series_by_label(HS)
        assert any(r < h for r, h in zip(rtr.y, hs.y))


class TestFig5:
    def test_inconsistency_grows_with_loss(self, fig5):
        for series in fig5.panel("a: vs loss rate").series:
            assert increasing(series.y, tolerance=1e-9), series.label

    def test_reliability_pays_at_modest_loss(self, fig5):
        panel = fig5.panel("a: vs loss rate")
        x_modest = panel.series[0].x[2]  # ~5% loss
        assert 0.03 <= x_modest <= 0.08
        ss = panel.series_by_label(SS).value_at(x_modest)
        rt = panel.series_by_label(SS_RT).value_at(x_modest)
        assert rt < ss

    def test_zero_loss_ranks_by_removal_latency(self, fig5):
        panel = fig5.panel("a: vs loss rate")
        # At p=0 the only inconsistency left is propagation + orphan wait;
        # protocols with explicit removal are strictly better.
        assert panel.series_by_label(SS_ER).y[0] < panel.series_by_label(SS).y[0]

    def test_inconsistency_roughly_linear_in_delay(self, fig5):
        panel = fig5.panel("b: vs channel delay")
        for series in panel.series:
            xs, ys = series.x, series.y
            assert increasing(ys, tolerance=1e-9), series.label
            # Secant slopes of a straight line stay within a small band.
            slopes = [
                (y2 - y1) / (x2 - x1)
                for (x1, y1), (x2, y2) in zip(zip(xs, ys), zip(xs[1:], ys[1:]))
            ]
            assert max(slopes) < 3.0 * min(slopes), series.label

    def test_reliable_protocols_have_steeper_delay_slope(self, fig5):
        panel = fig5.panel("b: vs channel delay")

        def overall_slope(label):
            series = panel.series_by_label(label)
            return (series.y[-1] - series.y[0]) / (series.x[-1] - series.x[0])

        assert overall_slope(HS) > overall_slope(SS_ER)


class TestFig6:
    def test_fundamental_tradeoff_short_r_consistent_long_r_cheap(self, fig6):
        """Fig. 6's point: short R buys consistency, long R buys economy."""
        inconsistency = fig6.panel("a: inconsistency ratio")
        for label in (SS, SS_ER, SS_RT, SS_RTR):
            series = inconsistency.series_by_label(label)
            assert series.y[0] < series.y[-1], label

    def test_message_rate_falls_with_refresh_timer(self, fig6):
        panel = fig6.panel("b: signaling message rate")
        for label in (SS, SS_ER, SS_RT, SS_RTR):
            assert decreasing(panel.series_by_label(label).y, tolerance=1e-9), label

    def test_hs_flat_in_refresh_timer(self, fig6):
        for panel_name in ("a: inconsistency ratio", "b: signaling message rate"):
            hs = fig6.panel(panel_name).series_by_label(HS)
            assert max(hs.y) == pytest.approx(min(hs.y), rel=1e-9)

    def test_small_r_overhead_explodes(self, fig6):
        panel = fig6.panel("b: signaling message rate")
        ss = panel.series_by_label(SS)
        assert ss.y[0] > 30 * ss.y[-1]


class TestFig7:
    def test_ss_optimum_sensitive(self, fig7):
        series = fig7.panel("integrated cost").series_by_label(SS)
        best = min(series.y)
        assert series.y[0] > 5 * best  # short-R side blows up
        assert series.y[-1] > 2 * best  # long-R side degrades too

    def test_ss_er_flatter_on_long_side(self, fig7):
        panel = fig7.panel("integrated cost")
        ss = panel.series_by_label(SS)
        er = panel.series_by_label(SS_ER)
        assert er.y[-1] / min(er.y) < 0.5 * (ss.y[-1] / min(ss.y))

    def test_rtr_prefers_long_timers(self, fig7):
        series = fig7.panel("integrated cost").series_by_label(SS_RTR)
        best = min(range(len(series.y)), key=lambda i: series.y[i])
        assert series.x[best] > 20.0

    def test_rtr_with_long_timer_comparable_to_hs(self, fig7):
        panel = fig7.panel("integrated cost")
        rtr_best = min(panel.series_by_label(SS_RTR).y)
        hs = panel.series_by_label(HS).y[0]
        assert rtr_best == pytest.approx(hs, rel=0.15)


class TestFig8:
    def test_all_soft_protocols_poor_when_timeout_below_refresh(self, fig8):
        # "when the state-timeout timer is shorter than the refresh
        # timer, all soft-state based approaches perform poorly".
        panel = fig8.panel("a: vs state-timeout timer")
        for label in (SS, SS_ER, SS_RT, SS_RTR):
            series = panel.series_by_label(label)
            assert series.y[0] > 10 * min(series.y), label

    def test_rtr_improves_with_longer_timeout(self, fig8):
        panel = fig8.panel("a: vs state-timeout timer")
        series = panel.series_by_label(SS_RTR)
        usable = [(x, y) for x, y in zip(series.x, series.y) if x >= 15.0]
        values = [y for _, y in usable]
        assert decreasing(values, tolerance=1e-7)

    def test_ss_has_interior_timeout_optimum_near_2r(self, fig8):
        # SS/SS+ER "do best when the state-timeout timer is
        # approximately twice the length of the refresh timer" (R = 5s).
        panel = fig8.panel("a: vs state-timeout timer")
        for label in (SS, SS_ER):
            series = panel.series_by_label(label)
            best = min(range(len(series.y)), key=lambda i: series.y[i])
            assert 0 < best < len(series.y) - 1, label
            assert 5.0 < series.x[best] < 20.0, label

    def test_rt_optimum_just_above_refresh_timer(self, fig8):
        # SS+RT "works best with a timeout timer value that is just
        # slightly larger than that of the state-refresh timer".
        panel = fig8.panel("a: vs state-timeout timer")
        series = panel.series_by_label(SS_RT)
        best = min(range(len(series.y)), key=lambda i: series.y[i])
        assert 5.0 < series.x[best] < 10.0

    def test_hs_most_sensitive_to_retransmission_timer(self, fig8):
        panel = fig8.panel("b: vs retransmission timer")

        def spread(label):
            series = panel.series_by_label(label)
            return max(series.y) - min(series.y)

        assert spread(HS) > spread(SS_RTR)
        assert spread(HS) > spread(SS_RT)

    def test_ss_flat_in_retransmission_timer(self, fig8):
        panel = fig8.panel("b: vs retransmission timer")
        for label in (SS, SS_ER):
            series = panel.series_by_label(label)
            assert max(series.y) == pytest.approx(min(series.y), rel=1e-9), label


class TestFig9:
    def test_hs_is_single_point(self, fig9):
        hs = fig9.panel("tradeoff").series_by_label(HS)
        assert len(hs.x) == 1

    def test_soft_state_curves_trade_off(self, fig9):
        panel = fig9.panel("tradeoff")
        for label in (SS, SS_ER, SS_RT):
            series = panel.series_by_label(label)
            spread = max(series.x) / min(series.x)
            assert spread > 5.0, label

    def test_rtr_consistency_insensitive_to_refresh_rate(self, fig9):
        panel = fig9.panel("tradeoff")
        rtr = panel.series_by_label(SS_RTR)
        ss = panel.series_by_label(SS)
        rtr_spread = max(rtr.x) / min(rtr.x)
        ss_spread = max(ss.x) / min(ss.x)
        assert rtr_spread < 0.1 * ss_spread


class TestFig10:
    def test_ss_cheapest_at_loose_consistency(self, fig10):
        panel = fig10.panel("a: varying update rate")

        def cost_at_inconsistency(label, target):
            series = panel.series_by_label(label)
            candidates = [
                y for x, y in zip(series.x, series.y) if abs(x - target) / target < 0.5
            ]
            return min(candidates) if candidates else None

        loose = 0.02
        ss_cost = cost_at_inconsistency(SS, loose)
        hs_cost = cost_at_inconsistency(HS, loose)
        if ss_cost is not None and hs_cost is not None:
            assert ss_cost < hs_cost

    def test_hs_reaches_tightest_consistency(self, fig10):
        panel = fig10.panel("a: varying update rate")
        best = {s.label: min(s.x) for s in panel.series}
        assert best[HS] <= min(best[SS], best[SS_ER], best[SS_RT])

    def test_delay_curves_cover_smaller_overhead_range(self, fig10):
        # Paper: "the tradeoff curves are not sensitive to changing
        # signaling channel delays" — overhead barely moves with Delta.
        panel = fig10.panel("b: varying channel delay")
        for label in (SS, SS_ER):
            series = panel.series_by_label(label)
            assert max(series.y) / min(series.y) < 1.5, label


class TestFig17:
    def test_inconsistency_grows_with_hop_index(self, fig17):
        for series in fig17.panel("per-hop inconsistency").series:
            assert increasing(series.y, tolerance=1e-12), series.label

    def test_growth_approximately_linear(self, fig17):
        panel = fig17.panel("per-hop inconsistency")
        for series in panel.series:
            half = series.y[9] / series.y[19]  # hop 10 vs hop 20
            assert 0.3 < half < 0.7, series.label

    def test_rt_close_to_hs_far_from_ss(self, fig17):
        panel = fig17.panel("per-hop inconsistency")
        last = {s.label: s.y[-1] for s in panel.series}
        assert last[SS_RT] == pytest.approx(last[HS], rel=0.15)
        assert last[SS] > 4 * last[SS_RT]

    def test_hs_slightly_ahead_at_far_hops(self, fig17):
        panel = fig17.panel("per-hop inconsistency")
        assert (
            panel.series_by_label(HS).y[-1] < panel.series_by_label(SS_RT).y[-1]
        )


class TestFig18:
    def test_both_metrics_monotone_in_hops(self, fig18):
        for panel_name in ("a: inconsistency ratio", "b: signaling message rate"):
            for series in fig18.panel(panel_name).series:
                assert increasing(series.y, tolerance=1e-12), (panel_name, series.label)

    def test_ss_most_sensitive_to_hops(self, fig18):
        panel = fig18.panel("a: inconsistency ratio")
        growth = {s.label: s.y[-1] - s.y[0] for s in panel.series}
        assert growth[SS] > 3 * growth[SS_RT]

    def test_rt_overhead_increment_small(self, fig18):
        panel = fig18.panel("b: signaling message rate")
        ss = panel.series_by_label(SS).y[-1]
        rt = panel.series_by_label(SS_RT).y[-1]
        assert rt > ss
        assert (rt - ss) / ss < 0.25

    def test_hs_overhead_far_below_soft_state(self, fig18):
        panel = fig18.panel("b: signaling message rate")
        assert panel.series_by_label(HS).y[-1] < 0.3 * panel.series_by_label(SS).y[-1]


class TestFig19:
    def test_ss_inconsistency_vee_shape(self, fig19):
        """SS improves while R is tiny, then degrades sharply (Fig. 19a)."""
        series = fig19.panel("a: inconsistency ratio").series_by_label(SS)
        best = min(range(len(series.y)), key=lambda i: series.y[i])
        assert series.x[best] < 2.0  # optimum at small R
        assert series.y[-1] > 5 * series.y[best]  # sharp degradation after

    def test_rt_optimum_at_larger_r_than_ss(self, fig19):
        panel = fig19.panel("a: inconsistency ratio")
        ss = panel.series_by_label(SS)
        rt = panel.series_by_label(SS_RT)
        ss_best = ss.x[min(range(len(ss.y)), key=lambda i: ss.y[i])]
        rt_best = rt.x[min(range(len(rt.y)), key=lambda i: rt.y[i])]
        assert rt_best > ss_best

    def test_overhead_decreases_with_r(self, fig19):
        panel = fig19.panel("b: signaling message rate")
        for label in (SS, SS_RT):
            assert decreasing(panel.series_by_label(label).y, tolerance=1e-9), label

    def test_hs_flat(self, fig19):
        for panel_name in ("a: inconsistency ratio", "b: signaling message rate"):
            hs = fig19.panel(panel_name).series_by_label(HS)
            assert max(hs.y) == pytest.approx(min(hs.y), rel=1e-9)
