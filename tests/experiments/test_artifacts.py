"""Tests for the versioned JSON artifact (to_json/from_json)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import (
    SCHEMA_VERSION,
    ExperimentResult,
    Panel,
    Provenance,
    Series,
)


def shared_result() -> ExperimentResult:
    panel = Panel(
        name="main",
        x_label="x",
        y_label="y",
        series=(
            Series("a", (1.0, 2.0), (0.5, 0.25)),
            Series("b", (1.0, 2.0), (0.1, 0.2), (0.01, 0.02)),
        ),
        log_x=True,
    )
    return ExperimentResult("e", "a title", (panel,), ("a note",))


def parametric_result() -> ExperimentResult:
    panel = Panel(
        name="tradeoff",
        x_label="I",
        y_label="M",
        series=(
            Series("a", (0.1, 0.2), (1.0, 2.0)),
            Series("b", (0.5,), (9.0,)),
        ),
        shared_x=False,
        log_y=True,
    )
    provenance = Provenance(
        scenario_id="e",
        fidelity="fast",
        overrides=(("loss_rate", 0.05),),
        protocols=("SS", "HS"),
        package_version="1.1.0",
    )
    return ExperimentResult("e", "t", (panel,), provenance=provenance)


class TestRoundTrip:
    def test_shared_panel_round_trip(self):
        result = shared_result()
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_parametric_panel_with_provenance_round_trip(self):
        result = parametric_result()
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result
        assert restored.provenance.overrides == (("loss_rate", 0.05),)

    def test_missing_provenance_round_trips_as_none(self):
        restored = ExperimentResult.from_json(shared_result().to_json())
        assert restored.provenance is None

    def test_floats_round_trip_exactly(self):
        # repr-based JSON floats restore bit-identical values, so the
        # artifact is as exact as the in-memory result.
        value = 0.1 + 0.2  # not representable prettily
        panel = Panel("p", "x", "y", (Series("s", (value,), (value / 3.0,)),))
        result = ExperimentResult("e", "t", (panel,))
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.panels[0].series[0].x[0] == value
        assert restored.panels[0].series[0].y[0] == value / 3.0


class TestSchema:
    def test_document_carries_schema_version(self):
        document = json.loads(shared_result().to_json())
        assert document["schema_version"] == SCHEMA_VERSION

    def test_unsupported_version_rejected(self):
        document = json.loads(shared_result().to_json())
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentResult.from_json(json.dumps(document))

    def test_missing_version_rejected(self):
        document = json.loads(shared_result().to_json())
        del document["schema_version"]
        with pytest.raises(ValueError, match="schema_version"):
            ExperimentResult.from_json(json.dumps(document))

    def test_compact_rendering_supported(self):
        text = shared_result().to_json(indent=None)
        assert "\n" not in text
        assert ExperimentResult.from_json(text) == shared_result()
