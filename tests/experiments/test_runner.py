"""Tests for the experiment framework itself."""

from __future__ import annotations

import pytest

from repro.experiments import experiment_ids, registry, run_experiment
from repro.experiments.runner import (
    ExperimentResult,
    Panel,
    Series,
    geometric_sweep,
    linear_sweep,
)


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1.0, 2.0), (1.0,))

    def test_error_bar_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1.0,), (1.0,), (0.1, 0.2))

    def test_from_points(self):
        series = Series.from_points("x", [(1.0, 10.0), (2.0, 20.0)])
        assert series.x == (1.0, 2.0)
        assert series.y == (10.0, 20.0)

    def test_value_at(self):
        series = Series("x", (1.0, 2.0), (10.0, 20.0))
        assert series.value_at(2.0) == 20.0
        with pytest.raises(KeyError):
            series.value_at(3.0)

    def test_value_at_near_zero_has_no_spurious_match(self):
        # A single shared tolerance used as abs_tol made any tiny x
        # match a swept 0.0; the split rel_tol/abs_tol defaults must
        # keep exact-zero lookups working without that false positive.
        series = Series("x", (0.0, 1.0), (5.0, 6.0))
        assert series.value_at(0.0) == 5.0
        with pytest.raises(KeyError):
            series.value_at(1e-10)

    def test_value_at_explicit_tolerances(self):
        series = Series("x", (100.0,), (1.0,))
        assert series.value_at(100.0 + 1e-7, rel_tol=1e-6) == 1.0
        with pytest.raises(KeyError):
            series.value_at(100.0 + 1e-7, rel_tol=1e-12, abs_tol=0.0)


class TestPanel:
    def make_panel(self):
        return Panel(
            name="p",
            x_label="x",
            y_label="y",
            series=(Series("a", (1.0,), (1.0,)), Series("b", (1.0,), (2.0,))),
        )

    def test_series_by_label(self):
        panel = self.make_panel()
        assert panel.series_by_label("b").y == (2.0,)
        with pytest.raises(KeyError):
            panel.series_by_label("zzz")

    def test_labels(self):
        assert self.make_panel().labels() == ("a", "b")

    def test_mismatched_x_axes_rejected(self):
        with pytest.raises(ValueError, match="x-axis"):
            Panel(
                name="p",
                x_label="x",
                y_label="y",
                series=(
                    Series("a", (1.0, 2.0), (1.0, 2.0)),
                    Series("b", (1.0, 3.0), (1.0, 2.0)),
                ),
            )

    def test_shorter_series_rejected(self):
        with pytest.raises(ValueError, match="x-axis"):
            Panel(
                name="p",
                x_label="x",
                y_label="y",
                series=(Series("a", (1.0, 2.0), (1.0, 2.0)), Series("b", (1.0,), (1.0,))),
            )

    def test_parametric_panel_allows_differing_x(self):
        panel = Panel(
            name="p",
            x_label="x",
            y_label="y",
            series=(
                Series("a", (1.0, 2.0), (1.0, 2.0)),
                Series("b", (5.0,), (1.0,)),
            ),
            shared_x=False,
        )
        assert panel.labels() == ("a", "b")

    def test_empty_panel_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            Panel(name="p", x_label="x", y_label="y", series=())


class TestExperimentResult:
    def make_result(self):
        panel = Panel(
            name="main",
            x_label="x",
            y_label="y",
            series=(Series("a", (1.0, 2.0), (0.5, 0.25)),),
        )
        return ExperimentResult("test", "a test", (panel,), ("a note",))

    def test_panel_lookup(self):
        result = self.make_result()
        assert result.panel("main").name == "main"
        with pytest.raises(KeyError):
            result.panel("missing")

    def test_to_text_contains_everything(self):
        text = self.make_result().to_text()
        assert "test" in text
        assert "a note" in text
        assert "0.5" in text
        assert "a" in text

    def test_to_text_renders_error_bars(self):
        panel = Panel(
            name="m",
            x_label="x",
            y_label="y",
            series=(Series("s", (1.0,), (0.5,), (0.01,)),),
        )
        text = ExperimentResult("e", "t", (panel,)).to_text()
        assert "±" in text

    def make_parametric_result(self):
        panel = Panel(
            name="tradeoff",
            x_label="I",
            y_label="M",
            series=(
                Series("a", (0.1, 0.2), (1.0, 2.0)),
                Series("b", (0.5,), (9.0,)),
            ),
            shared_x=False,
        )
        return ExperimentResult("e", "t", (panel,))

    def test_parametric_to_text_renders_per_series_blocks(self):
        text = self.make_parametric_result().to_text()
        assert "[a]" in text
        assert "[b]" in text
        # Every series' own points appear; no NaN padding rows.
        assert "0.5" in text
        assert "nan" not in text.lower()

    def test_parametric_to_csv_has_per_series_x_columns(self):
        csv_text = self.make_parametric_result().to_csv()["tradeoff"]
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a_x,a,b_x,b"
        assert lines[1] == "0.1,1,0.5,9"
        # The shorter series leaves its cells empty, not NaN.
        assert lines[2] == "0.2,2,,"

    def test_shared_csv_has_no_nan_padding(self):
        csv_text = self.make_result().to_csv()["main"]
        assert "nan" not in csv_text.lower()


class TestCsvQuoting:
    def make_result_with_label(self, label):
        panel = Panel(
            name="p",
            x_label="x",
            y_label="y",
            series=(Series(label, (1.0,), (2.0,)),),
        )
        return ExperimentResult("e", "t", (panel,))

    def test_comma_quoted(self):
        csv_text = self.make_result_with_label("a,b").to_csv()["p"]
        assert csv_text.splitlines()[0] == 'x,"a,b"'

    def test_newline_quoted(self):
        csv_text = self.make_result_with_label("two\nlines").to_csv()["p"]
        assert '"two\nlines"' in csv_text
        # The document still parses: the quoted field spans the break.
        import csv
        import io

        rows = list(csv.reader(io.StringIO(csv_text)))
        assert rows[0] == ["x", "two\nlines"]

    def test_carriage_return_quoted(self):
        csv_text = self.make_result_with_label("a\rb").to_csv()["p"]
        assert '"a\rb"' in csv_text

    def test_double_quote_escaped(self):
        csv_text = self.make_result_with_label('say "hi"').to_csv()["p"]
        assert '"say ""hi"""' in csv_text


class TestSweeps:
    def test_geometric_endpoints(self):
        sweep = geometric_sweep(1.0, 100.0, 3)
        assert sweep[0] == pytest.approx(1.0)
        assert sweep[1] == pytest.approx(10.0)
        assert sweep[2] == pytest.approx(100.0)

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            geometric_sweep(0.0, 10.0, 3)
        with pytest.raises(ValueError):
            geometric_sweep(10.0, 1.0, 3)
        with pytest.raises(ValueError):
            geometric_sweep(1.0, 10.0, 1)

    def test_linear_endpoints(self):
        sweep = linear_sweep(0.0, 1.0, 5)
        assert sweep == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_geometric_endpoint_is_exact(self):
        # 10 * ((10000/10)**(1/15))**15 drifts off 10000.0 in floating
        # point; the sweep must clamp so value_at(high) keeps working.
        sweep = geometric_sweep(10.0, 10_000.0, 16)
        assert sweep[-1] == 10_000.0
        series = Series("s", sweep, tuple(range(16)))
        assert series.value_at(10_000.0) == 15

    def test_linear_endpoint_is_exact(self):
        sweep = linear_sweep(0.1, 0.9, 7)
        assert sweep[0] == 0.1
        assert sweep[-1] == 0.9

    def test_two_point_sweeps_are_exact(self):
        assert geometric_sweep(3.0, 7.0, 2) == (3.0, 7.0)
        assert linear_sweep(3.0, 7.0, 2) == (3.0, 7.0)

    def test_geometric_interior_unchanged(self):
        sweep = geometric_sweep(1.0, 100.0, 5)
        assert sweep[2] == pytest.approx(10.0)
        assert all(a < b for a, b in zip(sweep, sweep[1:]))

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            linear_sweep(1.0, 0.0, 3)


class TestRegistry:
    EXPECTED = {
        "table1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig17",
        "fig18",
        "fig19",
        "scaling",  # beyond the paper: heterogeneous hop-count scaling
        "tree_fanout",  # beyond the paper: multicast fan-out trees
        "tree_depth",  # beyond the paper: balanced vs skewed tree depth
        "tree_deep",  # beyond the paper: deep trees via lumped/iterative backends
        "tree_wide",  # beyond the paper: fan-outs to 64 via exact lumping
        "burst_loss",  # beyond the paper: Gilbert-Elliott bursty loss
        "burst_loss_hops",  # beyond the paper: bursty loss on a chain
        "link_flap",  # beyond the paper: periodic link outages
        "time_to_consistency",  # beyond the paper: cold-start transient
        "recovery_flap",  # beyond the paper: link-flap recovery curve
        "recovery_crash",  # beyond the paper: node-crash recovery curve
    }

    def test_every_paper_artifact_registered(self):
        assert set(experiment_ids()) == self.EXPECTED

    def test_registry_returns_callables(self):
        for run in registry().values():
            assert callable(run)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
