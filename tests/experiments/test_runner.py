"""Tests for the experiment framework itself."""

from __future__ import annotations

import pytest

from repro.experiments import experiment_ids, registry, run_experiment
from repro.experiments.runner import (
    ExperimentResult,
    Panel,
    Series,
    geometric_sweep,
    linear_sweep,
)


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1.0, 2.0), (1.0,))

    def test_error_bar_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1.0,), (1.0,), (0.1, 0.2))

    def test_from_points(self):
        series = Series.from_points("x", [(1.0, 10.0), (2.0, 20.0)])
        assert series.x == (1.0, 2.0)
        assert series.y == (10.0, 20.0)

    def test_value_at(self):
        series = Series("x", (1.0, 2.0), (10.0, 20.0))
        assert series.value_at(2.0) == 20.0
        with pytest.raises(KeyError):
            series.value_at(3.0)


class TestPanel:
    def make_panel(self):
        return Panel(
            name="p",
            x_label="x",
            y_label="y",
            series=(Series("a", (1.0,), (1.0,)), Series("b", (1.0,), (2.0,))),
        )

    def test_series_by_label(self):
        panel = self.make_panel()
        assert panel.series_by_label("b").y == (2.0,)
        with pytest.raises(KeyError):
            panel.series_by_label("zzz")

    def test_labels(self):
        assert self.make_panel().labels() == ("a", "b")


class TestExperimentResult:
    def make_result(self):
        panel = Panel(
            name="main",
            x_label="x",
            y_label="y",
            series=(Series("a", (1.0, 2.0), (0.5, 0.25)),),
        )
        return ExperimentResult("test", "a test", (panel,), ("a note",))

    def test_panel_lookup(self):
        result = self.make_result()
        assert result.panel("main").name == "main"
        with pytest.raises(KeyError):
            result.panel("missing")

    def test_to_text_contains_everything(self):
        text = self.make_result().to_text()
        assert "test" in text
        assert "a note" in text
        assert "0.5" in text
        assert "a" in text

    def test_to_text_renders_error_bars(self):
        panel = Panel(
            name="m",
            x_label="x",
            y_label="y",
            series=(Series("s", (1.0,), (0.5,), (0.01,)),),
        )
        text = ExperimentResult("e", "t", (panel,)).to_text()
        assert "±" in text


class TestSweeps:
    def test_geometric_endpoints(self):
        sweep = geometric_sweep(1.0, 100.0, 3)
        assert sweep[0] == pytest.approx(1.0)
        assert sweep[1] == pytest.approx(10.0)
        assert sweep[2] == pytest.approx(100.0)

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            geometric_sweep(0.0, 10.0, 3)
        with pytest.raises(ValueError):
            geometric_sweep(10.0, 1.0, 3)
        with pytest.raises(ValueError):
            geometric_sweep(1.0, 10.0, 1)

    def test_linear_endpoints(self):
        sweep = linear_sweep(0.0, 1.0, 5)
        assert sweep == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            linear_sweep(1.0, 0.0, 3)


class TestRegistry:
    EXPECTED = {
        "table1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig17",
        "fig18",
        "fig19",
    }

    def test_every_paper_artifact_registered(self):
        assert set(experiment_ids()) == self.EXPECTED

    def test_registry_returns_callables(self):
        for run in registry().values():
            assert callable(run)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
