"""Determinism tests for the replicated-simulation batch path.

The validation scenarios lean on one guarantee: a simulation point is
fully determined by its ``(protocol, params, sessions, replications,
seed)`` task tuple — never by how the batch is chunked, ordered or
fanned across workers.  These tests pin that guarantee.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import kazaa_defaults
from repro.core.protocols import Protocol
from repro.experiments.simsupport import (
    sessions_for_length,
    simulate_singlehop_batch,
    simulate_singlehop_point,
)


def make_tasks(seed: int = 17):
    params = kazaa_defaults().replace(removal_rate=1.0 / 120.0)
    lossy = params.replace(loss_rate=0.1)
    return [
        (Protocol.SS, params, 15, 2, seed),
        (Protocol.HS, params, 15, 2, seed),
        (Protocol.SS_ER, lossy, 10, 2, seed),
        (Protocol.SS, lossy, 10, 2, seed + 1),
    ]


class TestBatchDeterminism:
    def test_same_seed_same_metrics_regardless_of_jobs(self):
        tasks = make_tasks()
        serial = simulate_singlehop_batch(tasks, jobs=1)
        fanned = simulate_singlehop_batch(tasks, jobs=2)
        wide = simulate_singlehop_batch(tasks, jobs=4)
        assert serial == fanned == wide

    def test_task_order_does_not_perturb_points(self):
        tasks = make_tasks()
        forward = simulate_singlehop_batch(tasks)
        backward = simulate_singlehop_batch(list(reversed(tasks)))
        assert forward == list(reversed(backward))

    def test_batch_matches_single_point_calls(self):
        tasks = make_tasks()
        batch = simulate_singlehop_batch(tasks)
        for task, point in zip(tasks, batch):
            protocol, params, sessions, replications, seed = task
            assert point == simulate_singlehop_point(
                protocol, params, sessions=sessions,
                replications=replications, seed=seed,
            )

    def test_different_seeds_differ(self):
        protocol, params, sessions, replications, seed = make_tasks()[0]
        a = simulate_singlehop_point(protocol, params, sessions, replications, seed)
        b = simulate_singlehop_point(protocol, params, sessions, replications, seed + 1)
        assert a != b


class TestSessionsForLength:
    def test_budget_scaling_and_clamps(self):
        assert sessions_for_length(100.0, 30_000.0) == 300
        assert sessions_for_length(10_000.0, 30_000.0) == 20  # floor
        assert sessions_for_length(1.0, 30_000.0) == 600  # ceiling

    @pytest.mark.parametrize("length,budget", [(0.0, 10.0), (10.0, 0.0), (-1.0, 5.0)])
    def test_invalid_inputs_rejected(self, length, budget):
        with pytest.raises(ValueError):
            sessions_for_length(length, budget)
