"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids
from repro.experiments.runner import ExperimentResult


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_accepts_flags(self):
        args = build_parser().parse_args(["run", "fig4", "--fast"])
        assert args.experiment == "fig4"
        assert args.fast
        assert args.jobs is None

    def test_jobs_flag_parsed(self):
        assert build_parser().parse_args(["run", "fig4", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["all", "--jobs", "2"]).jobs == 2
        assert build_parser().parse_args(["claims", "--jobs", "2"]).jobs == 2


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(experiment_ids())

    def test_run_prints_table(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "SS+RTR" in out

    def test_run_fast_figure(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "loss rate" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "out" / "fig5.txt"
        assert main(["run", "fig5", "--fast", "--output", str(target)]) == 0
        assert target.exists()
        assert "loss rate" in target.read_text()

    def test_claims_command(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "explicit removal" in out

    def test_run_with_jobs_matches_serial(self, capsys):
        assert main(["run", "fig17", "--fast"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig17", "--fast", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestFidelity:
    def test_fidelity_flag_parsed(self):
        args = build_parser().parse_args(["run", "fig4", "--fidelity", "smoke"])
        assert args.fidelity == "smoke"

    def test_fast_is_deprecated_alias(self, capsys):
        assert main(["run", "table1", "--fast"]) == 0
        assert "deprecated" in capsys.readouterr().err

    def test_explicit_fidelity_wins_over_fast(self, capsys):
        assert main(["run", "fig5", "--fast", "--fidelity", "smoke"]) == 0
        smoke_rows = capsys.readouterr().out.count("\n")
        assert main(["run", "fig5", "--fast"]) == 0
        fast_rows = capsys.readouterr().out.count("\n")
        assert smoke_rows < fast_rows

    def test_smoke_thins_sweeps(self, capsys):
        assert main(["run", "fig4", "--fidelity", "smoke"]) == 0
        smoke = capsys.readouterr().out
        assert main(["run", "fig4", "--fidelity", "fast"]) == 0
        fast = capsys.readouterr().out
        assert smoke.count("\n") < fast.count("\n")


class TestExitCodes:
    def test_unknown_scenario_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig99"])
        assert excinfo.value.code == 2

    def test_unknown_override_key_exits_2(self, capsys):
        assert main(["run", "fig4", "--fidelity", "smoke", "--set", "bogus=1"]) == 2
        assert "unknown parameter" in capsys.readouterr().err

    def test_malformed_override_exits_2(self, capsys):
        assert main(["run", "fig4", "--set", "loss_rate"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_non_numeric_override_exits_2(self, capsys):
        assert main(["run", "fig4", "--set", "loss_rate=abc"]) == 2
        assert "not a number" in capsys.readouterr().err

    def test_out_of_range_override_exits_2(self, capsys):
        assert main(["run", "fig4", "--fidelity", "smoke", "--set", "loss_rate=1.5"]) == 2
        assert "loss_rate" in capsys.readouterr().err

    def test_unsupported_protocol_exits_2(self, capsys):
        assert main(["run", "fig17", "--protocols", "ss+er"]) == 2
        assert "does not model" in capsys.readouterr().err


class TestStructuredOutput:
    def test_format_json_round_trips_with_provenance(self, capsys):
        assert (
            main(
                [
                    "run",
                    "fig4",
                    "--fidelity",
                    "smoke",
                    "--set",
                    "loss_rate=0.05",
                    "--protocols",
                    "ss,hs",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        result = ExperimentResult.from_json(out)
        assert result.experiment_id == "fig4"
        assert result.provenance.fidelity == "smoke"
        assert result.provenance.overrides == (("loss_rate", 0.05),)
        assert result.provenance.protocols == ("SS", "HS")
        assert result.panels[0].labels() == ("SS", "HS")

    def test_format_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "fig4.json"
        assert (
            main(
                ["run", "fig4", "--fidelity", "smoke", "--format", "json", "--output", str(target)]
            )
            == 0
        )
        document = json.loads(target.read_text())
        assert document["schema_version"] == 1

    def test_format_csv_prints_panel_blocks(self, capsys):
        assert main(["run", "table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "# panel: transition rates" in out
        assert "row index" in out


class TestAllCommand:
    def test_all_smoke_writes_json_and_csvs(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        csv_dir = tmp_path / "csv"
        assert (
            main(
                [
                    "all",
                    "--fidelity",
                    "smoke",
                    "--format",
                    "json",
                    "--output-dir",
                    str(out_dir),
                    "--csv-dir",
                    str(csv_dir),
                ]
            )
            == 0
        )
        for experiment_id in experiment_ids():
            artifact = out_dir / f"{experiment_id}.json"
            assert artifact.exists()
            result = ExperimentResult.from_json(artifact.read_text())
            assert result.provenance.fidelity == "smoke"
            assert list(csv_dir.glob(f"{experiment_id}_*.csv")), experiment_id


class TestValidateCommand:
    def test_parser_defaults_to_all(self):
        args = build_parser().parse_args(["validate"])
        assert args.target == "all"
        assert args.format == "text"

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["validate", "fig99"])

    def test_validate_one_scenario_text(self, capsys):
        assert main(["validate", "fig4", "--fidelity", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "validation fig4 [smoke]: PASS" in out
        assert "dense==template" in out
        assert "all passed" in out

    def test_validate_json_artifact_round_trips(self, capsys):
        from repro.validation import ValidationReport

        assert main(["validate", "fig11", "--fidelity", "smoke", "--format", "json"]) == 0
        report = ValidationReport.from_json(capsys.readouterr().out)
        assert report.scenario_id == "fig11"
        assert report.passed
        assert any(check.kind == "sim_model" for check in report.checks)

    def test_validate_writes_output_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        assert (
            main(
                [
                    "validate",
                    "fig4",
                    "--fidelity",
                    "smoke",
                    "--format",
                    "json",
                    "--output-dir",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert (out_dir / "validate_fig4.json").exists()

    def test_validate_seed_override(self, capsys):
        # A different simulation seed still passes the equivalence
        # checks (the margins absorb replication noise).
        assert main(["validate", "fig11", "--fidelity", "smoke", "--seed", "23"]) == 0

    def test_validate_seed_zero_accepted(self, capsys):
        # Seed 0 is valid everywhere in the library; the CLI must not
        # reject it.
        assert main(["validate", "fig11", "--fidelity", "smoke", "--seed", "0"]) == 0

    def test_validate_output_and_output_dir_conflict(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["validate", "fig4", "--output", "a.txt", "--output-dir", "d"]
            )
        assert excinfo.value.code == 2

    def test_validate_output_dir_prints_summary(self, tmp_path, capsys):
        assert (
            main(
                [
                    "validate",
                    "fig4",
                    "--fidelity",
                    "smoke",
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "all passed" in out
        assert (tmp_path / "validate_fig4.txt").exists()
