"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_accepts_flags(self):
        args = build_parser().parse_args(["run", "fig4", "--fast"])
        assert args.experiment == "fig4"
        assert args.fast
        assert args.jobs is None

    def test_jobs_flag_parsed(self):
        assert build_parser().parse_args(["run", "fig4", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(["all", "--jobs", "2"]).jobs == 2
        assert build_parser().parse_args(["claims", "--jobs", "2"]).jobs == 2


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(experiment_ids())

    def test_run_prints_table(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "SS+RTR" in out

    def test_run_fast_figure(self, capsys):
        assert main(["run", "fig5", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "loss rate" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "out" / "fig5.txt"
        assert main(["run", "fig5", "--fast", "--output", str(target)]) == 0
        assert target.exists()
        assert "loss rate" in target.read_text()

    def test_claims_command(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "explicit removal" in out

    def test_run_with_jobs_matches_serial(self, capsys):
        assert main(["run", "fig17", "--fast"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "fig17", "--fast", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
