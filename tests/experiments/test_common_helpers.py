"""Tests for the sweep helpers and simulation support utilities."""

from __future__ import annotations

import pytest

from repro.core.parameters import kazaa_defaults, reservation_defaults
from repro.core.protocols import Protocol
from repro.experiments.common import (
    multihop_metric_series,
    parametric_singlehop_series,
    singlehop_metric_series,
)
from repro.experiments.simsupport import (
    sessions_for_length,
    simulate_singlehop_point,
)


class TestSingleHopSweep:
    def test_one_series_per_protocol(self):
        base = kazaa_defaults()
        series = singlehop_metric_series(
            (100.0, 1000.0),
            lambda session: base.replace(removal_rate=1.0 / session),
            lambda sol: sol.inconsistency_ratio,
        )
        assert [s.label for s in series] == [p.value for p in Protocol]
        assert all(len(s.y) == 2 for s in series)

    def test_protocol_subset(self):
        base = kazaa_defaults()
        series = singlehop_metric_series(
            (100.0,),
            lambda session: base.replace(removal_rate=1.0 / session),
            lambda sol: sol.inconsistency_ratio,
            protocols=(Protocol.SS, Protocol.HS),
        )
        assert [s.label for s in series] == ["SS", "HS"]


class TestParametricSweep:
    def test_points_sorted_by_x_metric(self):
        base = kazaa_defaults()
        series = parametric_singlehop_series(
            (1.0, 10.0, 100.0),
            lambda r: base.with_coupled_timers(r),
            x_metric=lambda sol: sol.inconsistency_ratio,
            y_metric=lambda sol: sol.normalized_message_rate,
            protocols=(Protocol.SS,),
        )
        xs = series[0].x
        assert xs == tuple(sorted(xs))


class TestMultiHopSweep:
    def test_multihop_series(self):
        base = reservation_defaults()
        series = multihop_metric_series(
            (2.0, 4.0),
            lambda n: base.replace(hops=int(n)),
            lambda sol: sol.inconsistency_ratio,
        )
        assert [s.label for s in series] == [p.value for p in Protocol.multihop_family()]


class TestSimSupport:
    def test_sessions_budget_split(self):
        assert sessions_for_length(100.0, 10_000.0) == 100
        assert sessions_for_length(1.0, 10_000.0) == 600  # capped high
        assert sessions_for_length(1e6, 10_000.0) == 20  # capped low

    def test_sessions_validation(self):
        with pytest.raises(ValueError):
            sessions_for_length(0.0, 100.0)
        with pytest.raises(ValueError):
            sessions_for_length(10.0, 0.0)

    def test_simulate_point_reports_cis(self):
        point = simulate_singlehop_point(
            Protocol.SS_ER,
            kazaa_defaults(),
            sessions=30,
            replications=3,
            seed=5,
        )
        assert 0.0 <= point.inconsistency <= 1.0
        assert point.inconsistency_err >= 0.0
        assert point.message_rate > 0.0
        assert point.message_rate_err >= 0.0


class TestEmptySweeps:
    def test_empty_sweep_returns_empty_series(self):
        from repro.experiments.common import (
            multihop_metric_series,
            parametric_singlehop_series,
            singlehop_metric_series,
        )

        for series in (
            singlehop_metric_series((), lambda x: kazaa_defaults(), lambda s: 0.0),
            parametric_singlehop_series(
                (), lambda x: kazaa_defaults(), lambda s: 0.0, lambda s: 0.0
            ),
            multihop_metric_series((), lambda x: None, lambda s: 0.0),
        ):
            assert all(s.x == () and s.y == () for s in series)
            assert len(series) >= 3
