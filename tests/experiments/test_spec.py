"""Tests for the declarative scenario spec layer."""

from __future__ import annotations

import pytest

from repro.core.parameters import MultiHopParameters, kazaa_defaults
from repro.core.protocols import Protocol
from repro.experiments import scenario, scenario_ids, scenarios
from repro.experiments.spec import (
    FAST,
    FIDELITIES,
    FULL,
    SMOKE,
    Axis,
    FidelityProfile,
    PanelSpec,
    ScenarioError,
    ScenarioSpec,
    SeriesPlan,
    apply_overrides,
    base_parameters,
    parse_overrides,
    parse_protocol,
    parse_protocols,
    register_scenario,
)


def minimal_panel() -> PanelSpec:
    return PanelSpec(
        name="p",
        x_label="x",
        y_label="y",
        plans=(
            SeriesPlan(
                "sweep", axis="a", binder="loss_rate", metric="inconsistency_ratio"
            ),
        ),
    )


def minimal_spec(**changes) -> ScenarioSpec:
    fields = dict(
        scenario_id="tmp",
        title="t",
        artifact="none",
        family="singlehop",
        preset="kazaa",
        protocols=tuple(Protocol),
        axes=(Axis("a", "linear", low=0.0, high=0.1, points=5),),
        panels=(minimal_panel(),),
    )
    fields.update(changes)
    return ScenarioSpec(**fields)


class TestRegistry:
    def test_all_canned_scenarios_registered(self):
        assert set(scenario_ids()) == {
            "table1",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig17",
            "fig18",
            "fig19",
            "scaling",
            "tree_fanout",
            "tree_depth",
            "tree_deep",
            "tree_wide",
            "burst_loss",
            "burst_loss_hops",
            "link_flap",
            "time_to_consistency",
            "recovery_flap",
            "recovery_crash",
        }

    def test_registry_holds_frozen_specs(self):
        for spec in scenarios().values():
            assert isinstance(spec, ScenarioSpec)
            with pytest.raises(AttributeError):
                spec.title = "mutated"

    def test_every_scenario_names_all_standard_fidelities(self):
        for spec in scenarios().values():
            for name in FIDELITIES:
                assert spec.fidelity(name).name == name

    def test_scenario_lookup(self):
        assert scenario("fig4").scenario_id == "fig4"
        with pytest.raises(KeyError):
            scenario("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            register_scenario(scenario("fig4"))

    def test_artifact_tags_present(self):
        assert scenario("fig4").artifact == "Fig. 4"
        assert scenario("table1").artifact == "Table I"
        assert scenario("scaling").artifact == "beyond the paper"


class TestAxis:
    def test_geometric_resolution_with_point_override(self):
        axis = Axis("a", "geometric", low=1.0, high=100.0, points=11)
        full = axis.resolve(FidelityProfile(FULL))
        fast = axis.resolve(FidelityProfile(FAST, axis_points={"a": 3}))
        assert len(full) == 11
        assert fast == (1.0, 10.0, 100.0)

    def test_value_override_beats_point_override(self):
        axis = Axis("a", "geometric", low=1.0, high=100.0, points=11)
        profile = FidelityProfile(SMOKE, axis_points={"a": 5}, axis_values={"a": (7.0,)})
        assert axis.resolve(profile) == (7.0,)

    def test_explicit_axis(self):
        axis = Axis("a", "explicit", values=(1.0, 2.0, 3.0))
        assert axis.resolve(FidelityProfile(FULL)) == (1.0, 2.0, 3.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="kind"):
            Axis("a", "sinusoidal", low=0.0, high=1.0, points=4)

    def test_explicit_axis_needs_values(self):
        with pytest.raises(ScenarioError, match="values"):
            Axis("a", "explicit")

    def test_generated_axis_needs_points(self):
        with pytest.raises(ScenarioError, match="points"):
            Axis("a", "linear", low=0.0, high=1.0, points=1)


class TestSpecValidation:
    def test_unknown_axis_reference_rejected(self):
        panel = PanelSpec(
            name="p",
            x_label="x",
            y_label="y",
            plans=(
                SeriesPlan(
                    "sweep", axis="zzz", binder="loss_rate", metric="inconsistency_ratio"
                ),
            ),
        )
        with pytest.raises(ScenarioError, match="unknown axis"):
            minimal_spec(panels=(panel,))

    def test_missing_full_fidelity_rejected(self):
        with pytest.raises(ScenarioError, match="full"):
            minimal_spec(fidelities=(FidelityProfile(FAST),))

    def test_duplicate_fidelity_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            minimal_spec(
                fidelities=(FidelityProfile(FULL), FidelityProfile(FULL))
            )

    def test_fidelity_with_typoed_axis_rejected(self):
        # A typo'd axis name in a profile would otherwise be silently
        # ignored, leaving the profile running at full resolution.
        with pytest.raises(ScenarioError, match="unknown axis"):
            minimal_spec(
                fidelities=(
                    FidelityProfile(FULL),
                    FidelityProfile(FAST, axis_points={"ax_typo": 3}),
                )
            )
        with pytest.raises(ScenarioError, match="unknown axis"):
            minimal_spec(
                fidelities=(
                    FidelityProfile(FULL, axis_values={"ax_typo": (1.0,)}),
                )
            )

    def test_sim_plan_requires_sim_config(self):
        panel = PanelSpec(
            name="p",
            x_label="x",
            y_label="y",
            plans=(
                SeriesPlan("sim", axis="a", binder="loss_rate", metric="inconsistency"),
            ),
        )
        with pytest.raises(ScenarioError, match="SimPlan"):
            minimal_spec(panels=(panel,))

    def test_unknown_fidelity_lookup(self):
        with pytest.raises(ScenarioError, match="unknown fidelity"):
            minimal_spec().fidelity("turbo")

    def test_default_fidelities_generated(self):
        assert minimal_spec().fidelity_names() == FIDELITIES

    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="family"):
            minimal_spec(family="quantum")

    def test_unknown_plan_kind_rejected(self):
        with pytest.raises(ScenarioError, match="kind"):
            SeriesPlan("teleport")


class TestOverrides:
    def test_apply_known_field(self):
        params = apply_overrides(kazaa_defaults(), {"loss_rate": 0.1})
        assert params.loss_rate == 0.1

    def test_unknown_field_rejected_with_listing(self):
        with pytest.raises(ScenarioError, match="valid:"):
            apply_overrides(kazaa_defaults(), {"bogus": 1.0})

    def test_int_field_coerced(self):
        params = apply_overrides(MultiHopParameters(), {"hops": 30.0})
        assert params.hops == 30
        assert isinstance(params.hops, int)

    def test_range_validation_still_applies(self):
        with pytest.raises(ScenarioError, match="loss_rate"):
            apply_overrides(kazaa_defaults(), {"loss_rate": 1.5})

    def test_parse_overrides(self):
        assert parse_overrides(["loss_rate=0.05", "delay=0.1"]) == {
            "loss_rate": 0.05,
            "delay": 0.1,
        }

    def test_parse_overrides_malformed(self):
        with pytest.raises(ScenarioError, match="key=value"):
            parse_overrides(["loss_rate"])
        with pytest.raises(ScenarioError, match="not a number"):
            parse_overrides(["loss_rate=abc"])

    def test_base_parameters_spec_overrides_then_user(self):
        spec = scenario("fig8")
        assert base_parameters(spec).refresh_interval == 5.0
        assert base_parameters(spec, {"refresh_interval": 9.0}).refresh_interval == 9.0


class TestProtocolParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("ss", Protocol.SS),
            ("SS+ER", Protocol.SS_ER),
            ("ss_er", Protocol.SS_ER),
            ("ss-rtr", Protocol.SS_RTR),
            (" hs ", Protocol.HS),
        ],
    )
    def test_parse_protocol(self, text, expected):
        assert parse_protocol(text) is expected

    def test_parse_protocol_unknown(self):
        with pytest.raises(ScenarioError, match="unknown protocol"):
            parse_protocol("tcp")

    def test_parse_protocols_csv(self):
        assert parse_protocols("ss,hs") == (Protocol.SS, Protocol.HS)

    def test_parse_protocols_empty(self):
        with pytest.raises(ScenarioError, match="empty"):
            parse_protocols("")
