"""Tests for the claims registry, report and diagram renderers."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.experiments import experiment_ids
from repro.experiments.claims import evaluate_claims, figure_claims, render_report
from repro.experiments.diagrams import render_multihop_chain, render_singlehop_chain


class TestClaimsRegistry:
    def test_every_evaluation_figure_has_a_claim(self):
        covered = {claim.experiment_id for claim in figure_claims()}
        figures = {eid for eid in experiment_ids() if eid.startswith("fig")}
        assert covered == figures

    def test_claims_have_distinct_text(self):
        texts = [claim.claim for claim in figure_claims()]
        assert len(set(texts)) == len(texts)

    def test_analytic_claims_all_hold(self):
        analytic = [
            claim
            for claim in figure_claims()
            if claim.experiment_id not in ("fig11", "fig12")
        ]
        outcomes = evaluate_claims(analytic, fast=True)
        failing = [o.claim.claim for o in outcomes if not o.holds]
        assert not failing, failing

    def test_report_renders_pass_lines(self):
        analytic = [c for c in figure_claims() if c.experiment_id == "fig17"]
        outcomes = evaluate_claims(analytic, fast=True)
        report = render_report(outcomes)
        assert "[PASS]" in report
        assert "fig17" in report
        assert "claims hold" in report


class TestDiagrams:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_singlehop_diagram_lists_all_states(self, protocol):
        text = render_singlehop_chain(protocol)
        assert protocol.value in text
        assert "(1,0)_1" in text
        assert "(0,0)" in text
        if protocol.explicit_removal:
            assert "(0,1)_2" in text
        else:
            assert "(0,1)_2" not in text

    def test_singlehop_diagram_row_per_transition(self):
        from repro.core.parameters import SignalingParameters
        from repro.core.singlehop.transitions import build_transition_rates

        params = SignalingParameters()
        text = render_singlehop_chain(Protocol.SS, params)
        rates = build_transition_rates(Protocol.SS, params)
        arrow_lines = [line for line in text.splitlines() if "-->" in line]
        assert len(arrow_lines) == len(rates)

    @pytest.mark.parametrize("protocol", Protocol.multihop_family())
    def test_multihop_diagram_renders(self, protocol):
        text = render_multihop_chain(protocol)
        assert "Multi-hop Markov chain" in text
        assert "(0,0)" in text
        if protocol is Protocol.HS:
            assert "F" in text
            assert "Fig. 16" in text
        else:
            assert "Fig. 15" in text

    def test_cli_diagram_commands(self, capsys):
        from repro.cli import main

        assert main(["diagram", "SS"]) == 0
        assert "Fig. 3" in capsys.readouterr().out
        assert main(["diagram", "HS", "--multihop"]) == 0
        assert "Fig. 16" in capsys.readouterr().out
        assert main(["diagram", "SS+ER", "--multihop"]) == 1

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        # Restrict to the cheap analytic figures via the API instead of
        # the CLI (the CLI report runs everything); here we just check
        # the CLI wiring exists by rendering a tiny report directly.
        analytic = [c for c in figure_claims() if c.experiment_id == "fig18"]
        outcomes = evaluate_claims(analytic, fast=True)
        assert "fig18" in render_report(outcomes)
