"""Shape checks for the simulation-validation figures (11 and 12).

These are the paper's own model-vs-simulation comparison: the measured
series (deterministic timers) must track the analytic curves within the
paper's reported bands — a few percent on the inconsistency ratio for
most of the range, 5-15% on the message rate.
"""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig11():
    return run_experiment("fig11", fast=True)


@pytest.fixture(scope="module")
def fig12():
    return run_experiment("fig12", fast=True)


def paired(panel, protocol):
    model = panel.series_by_label(protocol.value)
    sim = panel.series_by_label(f"{protocol.value} sim")
    return model, sim


class TestFig11:
    def test_every_protocol_has_model_and_sim_series(self, fig11):
        panel = fig11.panel("a: inconsistency ratio")
        labels = set(panel.labels())
        for protocol in Protocol:
            assert protocol.value in labels
            assert f"{protocol.value} sim" in labels

    def test_sim_series_carry_confidence_intervals(self, fig11):
        panel = fig11.panel("a: inconsistency ratio")
        for protocol in Protocol:
            sim = panel.series_by_label(f"{protocol.value} sim")
            assert sim.y_err is not None
            assert all(err >= 0 for err in sim.y_err)

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_tracks_model(self, fig11, protocol):
        model, sim = paired(fig11.panel("a: inconsistency ratio"), protocol)
        for m, s, err in zip(model.y, sim.y, sim.y_err):
            # Within 35% relative or inside ~2 CIs (deterministic timers
            # bias soft-state timeouts slightly downward).
            assert abs(s - m) <= max(0.35 * m, 2.5 * err, 5e-4), protocol

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_message_rate_tracks_model(self, fig11, protocol):
        model, sim = paired(fig11.panel("b: signaling message rate"), protocol)
        for m, s, err in zip(model.y, sim.y, sim.y_err):
            assert abs(s - m) <= max(0.25 * m, 2.5 * err), protocol

    def test_sim_preserves_protocol_ordering(self, fig11):
        panel = fig11.panel("a: inconsistency ratio")
        # At the longest simulated sessions the reliable-trigger group
        # must sit below the best-effort group, as in the model.
        ss = panel.series_by_label(f"{Protocol.SS.value} sim").y[-1]
        rtr = panel.series_by_label(f"{Protocol.SS_RTR.value} sim").y[-1]
        hs = panel.series_by_label(f"{Protocol.HS.value} sim").y[-1]
        assert rtr < ss
        assert hs < ss


class TestFig12:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_inconsistency_tracks_model_across_r(self, fig12, protocol):
        model, sim = paired(fig12.panel("a: inconsistency ratio"), protocol)
        for m, s, err in zip(model.y, sim.y, sim.y_err):
            assert abs(s - m) <= max(0.4 * m, 2.5 * err, 1e-3), protocol

    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_message_rate_tracks_model_across_r(self, fig12, protocol):
        model, sim = paired(fig12.panel("b: signaling message rate"), protocol)
        for m, s, err in zip(model.y, sim.y, sim.y_err):
            assert abs(s - m) <= max(0.3 * m, 2.5 * err), protocol

    def test_sim_message_rate_falls_with_r_for_soft_state(self, fig12):
        panel = fig12.panel("b: signaling message rate")
        for protocol in (Protocol.SS, Protocol.SS_ER):
            sim = panel.series_by_label(f"{protocol.value} sim")
            assert sim.y[0] > sim.y[-1], protocol

    def test_hs_sim_flat_in_r(self, fig12):
        panel = fig12.panel("a: inconsistency ratio")
        sim = panel.series_by_label(f"{Protocol.HS.value} sim")
        # HS ignores R; only statistical noise separates the points.
        assert max(sim.y) < 3 * max(min(sim.y), 1e-4)
