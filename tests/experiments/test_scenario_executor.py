"""Tests for the generic scenario executor."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.experiments import run_experiment, run_scenario, scenario
from repro.experiments.spec import SMOKE, ScenarioError


class TestSpecPathParity:
    @pytest.mark.parametrize("experiment_id", ["fig4", "fig9", "fig17", "table1"])
    def test_fast_fidelity_matches_legacy_shim(self, experiment_id):
        via_shim = run_experiment(experiment_id, fast=True)
        via_spec = run_scenario(experiment_id, "fast")
        assert via_spec.to_text() == via_shim.to_text()

    def test_provenance_only_difference(self):
        # The shim routes through the executor, so results are fully
        # equal including the provenance block.
        assert run_experiment("fig17", fast=True) == run_scenario("fig17", "fast")


class TestFidelity:
    def test_smoke_thins_sweeps(self):
        fast = run_scenario("fig4", "fast")
        smoke = run_scenario("fig4", SMOKE)
        assert len(smoke.panels[0].series[0].x) < len(fast.panels[0].series[0].x)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fidelity"):
            run_scenario("fig4", "turbo")

    def test_every_scenario_runs_at_smoke(self):
        # The smoke profile must stay runnable for every registered
        # scenario — it backs the CI console-script smoke job.
        from repro.experiments import scenario_ids

        for scenario_id in scenario_ids():
            result = run_scenario(scenario_id, SMOKE)
            assert result.panels, scenario_id


class TestOverrides:
    def test_override_changes_values(self):
        base = run_scenario("fig4", SMOKE)
        lossy = run_scenario("fig4", SMOKE, overrides={"loss_rate": 0.2})
        assert base.panels[0].series[0].y != lossy.panels[0].series[0].y

    def test_override_recorded_in_provenance(self):
        result = run_scenario("fig4", SMOKE, overrides={"loss_rate": 0.05})
        assert result.provenance.overrides == (("loss_rate", 0.05),)
        assert result.provenance.fidelity == SMOKE
        assert result.provenance.scenario_id == "fig4"
        assert result.provenance.package_version

    def test_unknown_override_rejected(self):
        with pytest.raises(ScenarioError, match="unknown parameter"):
            run_scenario("fig4", SMOKE, overrides={"bogus": 1.0})

    def test_hops_override_reshapes_hop_profile(self):
        result = run_scenario("fig17", "full", overrides={"hops": 5})
        assert len(result.panels[0].series[0].x) == 5


class TestProtocolSelection:
    def test_subset_selected_in_spec_order(self):
        result = run_scenario("fig4", SMOKE, protocols="hs,ss")
        labels = result.panels[0].labels()
        assert labels == (Protocol.SS.value, Protocol.HS.value)

    def test_selection_recorded_in_provenance(self):
        result = run_scenario("fig4", SMOKE, protocols="ss,hs")
        assert result.provenance.protocols == ("SS", "HS")

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(ScenarioError, match="does not model"):
            run_scenario("fig17", "full", protocols="ss+er")

    def test_pinned_plan_intersection(self):
        # Fig. 9 pins its parametric plan to the soft-state family and
        # its point plan to HS; selecting only HS leaves the point.
        result = run_scenario("fig9", SMOKE, protocols="hs")
        assert result.panels[0].labels() == (Protocol.HS.value,)
        assert len(result.panels[0].series[0].x) == 1

    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError):
            run_scenario("fig99", "fast")


class TestLegacyShimKwargs:
    def test_seed_kwarg_still_accepted(self):
        # The pre-spec fig12 module exposed run(fast, seed=12); the
        # shim must keep honoring it (different seed, different sims).
        default = run_experiment("fig12", fidelity=SMOKE)
        reseeded = run_experiment("fig12", fidelity=SMOKE, seed=99)
        sim_default = default.panels[0].series_by_label("SS sim")
        sim_reseeded = reseeded.panels[0].series_by_label("SS sim")
        assert sim_default.y != sim_reseeded.y
        assert run_experiment("fig12", fidelity=SMOKE, seed=12) == default

    def test_params_kwarg_still_accepted(self):
        # The pre-spec table01 module exposed run(fast, params=...).
        from repro.core.parameters import SignalingParameters
        from repro.experiments.table01 import ROW_LABELS, transition_table

        params = SignalingParameters(loss_rate=0.05, delay=0.04)
        result = run_experiment("table1", params=params)
        table = transition_table(params)
        series = result.panels[0].series_by_label(Protocol.SS.value)
        assert series.y == tuple(table[Protocol.SS][label] for label in ROW_LABELS)


class TestVariantScenario:
    def test_acceptance_variant_runs_end_to_end(self):
        # The ISSUE's acceptance example: a fig4 variant with a lossier
        # channel and a two-protocol set, as JSON with provenance.
        result = run_scenario(
            scenario("fig4"),
            "smoke",
            overrides={"loss_rate": 0.05},
            protocols="ss,hs",
        )
        restored = type(result).from_json(result.to_json())
        assert restored == result
        assert restored.provenance.overrides == (("loss_rate", 0.05),)
        assert restored.provenance.protocols == ("SS", "HS")
