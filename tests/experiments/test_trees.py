"""The tree-topology scenarios: registry, executor wiring, CLI."""

import json

import pytest

from repro.core.multihop import Topology
from repro.core.parameters import reservation_defaults
from repro.cli import main
from repro.experiments import experiment_ids, run_scenario, scenario
from repro.experiments.spec import binder, metric


class TestRegistry:
    def test_tree_scenarios_registered(self):
        ids = experiment_ids()
        assert "tree_fanout" in ids
        assert "tree_depth" in ids
        assert "tree_deep" in ids
        assert "tree_wide" in ids

    def test_specs_are_tree_family(self):
        for scenario_id in ("tree_fanout", "tree_depth", "tree_deep", "tree_wide"):
            spec = scenario(scenario_id)
            assert spec.family == "tree"
            assert spec.preset == "reservation"
            assert spec.fidelity_names() == ("full", "fast", "smoke")


class TestBinders:
    def test_star_binder_binds_hops_to_edges(self):
        params, topology = binder("tree_star")(reservation_defaults(), 4.0)
        assert topology == Topology.star(4)
        assert params.hops == 4

    def test_broom_binder(self):
        params, topology = binder("tree_broom")(reservation_defaults(), 3.0)
        assert topology == Topology.broom(2, 3)
        assert params.hops == 5

    def test_binary_binder(self):
        _, topology = binder("tree_binary")(reservation_defaults(), 2.0)
        assert topology == Topology.kary(2, 2)

    def test_skewed_binder(self):
        _, topology = binder("tree_skewed")(reservation_defaults(), 3.0)
        assert topology == Topology.skewed(3)

    def test_ternary_binder(self):
        _, topology = binder("tree_ternary")(reservation_defaults(), 2.0)
        assert topology == Topology.kary(3, 2)

    def test_spine_binder_depth_semantics(self):
        for depth in (1, 2, 4):
            _, topology = binder("tree_spine")(reservation_defaults(), float(depth))
            assert topology.max_depth == depth

    def test_tree_metrics_registered(self):
        assert callable(metric("mean_leaf_inconsistency"))
        assert callable(metric("fanout_weighted_inconsistency"))


class TestExecution:
    def test_fanout_smoke_series_and_labels(self):
        result = run_scenario("tree_fanout", "smoke")
        panel = result.panel("a: any-leaf inconsistency")
        labels = [series.label for series in panel.series]
        assert "SS star" in labels
        assert "SS broom" in labels
        assert "HS star" in labels
        star = panel.series_by_label("SS star")
        assert star.x == (1.0, 2.0)
        # Fan-out widening hurts the any-leaf metric.
        assert star.y[1] > star.y[0]

    def test_depth_smoke_has_own_binary_axis(self):
        result = run_scenario("tree_depth", "smoke")
        panel = result.panel("a: any-leaf inconsistency")
        assert panel.series_by_label("SS skewed").x == (1.0, 2.0)
        # The binary axis is not thinned by the smoke profile; it is
        # already minimal.
        assert panel.series_by_label("SS binary").x == (1.0, 2.0)
        assert not panel.shared_x

    def test_depth_full_widens_only_deep_axes(self):
        result = run_scenario("tree_depth", "full")
        panel = result.panel("c: signaling message rate")
        assert panel.series_by_label("SS skewed").x == (1.0, 2.0, 3.0, 4.0)
        assert panel.series_by_label("SS binary").x == (1.0, 2.0)

    def test_unary_points_match_chain_scenario_values(self):
        # The fan-out-1 star is the 1-hop chain: cross-check the swept
        # value against a direct multihop solve.
        from repro.runtime import solve_multihop_batch
        from repro.core.protocols import Protocol

        result = run_scenario("tree_fanout", "smoke")
        series = result.panel("a: any-leaf inconsistency").series_by_label("SS star")
        chain_solution = solve_multihop_batch(
            [(Protocol.SS, reservation_defaults().replace(hops=1))]
        )[0]
        assert series.y[0] == chain_solution.inconsistency_ratio

    def test_protocol_narrowing(self):
        result = run_scenario("tree_fanout", "smoke", protocols="ss")
        for panel in result.panels:
            assert {series.label for series in panel.series} <= {
                "SS star",
                "SS broom",
            }

    def test_overrides_apply(self):
        base = run_scenario("tree_fanout", "smoke")
        lossy = run_scenario("tree_fanout", "smoke", overrides={"loss_rate": 0.1})
        panel = "a: any-leaf inconsistency"
        assert (
            lossy.panel(panel).series_by_label("SS star").y[1]
            > base.panel(panel).series_by_label("SS star").y[1]
        )

    def test_json_round_trip(self):
        from repro.experiments.runner import ExperimentResult

        result = run_scenario("tree_depth", "smoke")
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_deep_smoke_stays_below_the_lumped_crossover(self):
        # Smoke must never hit the iterative backend: every swept
        # topology stays within direct or cheap-lumped territory.
        from repro.core.multihop import select_tree_backend

        result = run_scenario("tree_deep", "smoke")
        panel = result.panel("a: any-leaf inconsistency")
        assert panel.series_by_label("SS binary").x == (1.0, 2.0)
        assert panel.series_by_label("SS ternary").x == (1.0,)
        assert panel.series_by_label("SS skewed").x == (5.0, 6.0)
        for depth in (5, 6):
            assert select_tree_backend(Topology.skewed(depth)) == "direct"

    def test_deep_fast_crosses_the_old_wall_exactly(self):
        # Fast sweeps binary depth 3 (15129 raw states) through the
        # lumped backend: values must be finite, monotone in depth, and
        # computed without touching the iterative path.
        from repro.core.multihop import select_tree_backend

        assert select_tree_backend(Topology.kary(2, 3)) == "lumped"
        result = run_scenario("tree_deep", "fast")
        series = result.panel("a: any-leaf inconsistency").series_by_label(
            "SS binary"
        )
        assert series.x == (1.0, 2.0, 3.0)
        assert series.y[0] < series.y[1] < series.y[2]

    def test_wide_smoke_routes_lumped(self):
        from repro.core.multihop import select_tree_backend

        assert select_tree_backend(Topology.star(8)) == "lumped"
        result = run_scenario("tree_wide", "smoke")
        panel = result.panel("c: signaling message rate")
        assert panel.series_by_label("SS star").x == (8.0,)
        assert panel.series_by_label("SS broom").x == (8.0,)

    def test_wide_fanout_widening_hurts_any_leaf(self):
        result = run_scenario("tree_wide", "fast")
        series = result.panel("a: any-leaf inconsistency").series_by_label(
            "SS star"
        )
        assert series.x == (8.0, 32.0)
        assert series.y[1] > series.y[0]


class TestCli:
    def test_run_tree_fanout_smoke_json(self, capsys):
        exit_code = main(
            ["run", "tree_fanout", "--fidelity", "smoke", "--format", "json"]
        )
        assert exit_code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["experiment_id"] == "tree_fanout"
        assert document["provenance"]["fidelity"] == "smoke"

    def test_run_tree_depth_smoke_text(self, capsys):
        assert main(["run", "tree_depth", "--fidelity", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "SS skewed" in out
        assert "SS binary" in out

    def test_list_includes_tree_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "tree_fanout" in out
        assert "tree_depth" in out

    def test_validate_tree_fanout_smoke(self, capsys):
        assert main(["validate", "tree_fanout", "--fidelity", "smoke"]) == 0
        assert "unary==chain" in capsys.readouterr().out


@pytest.mark.parametrize(
    "scenario_id", ["tree_fanout", "tree_depth", "tree_deep", "tree_wide"]
)
def test_fast_fidelity_runs(scenario_id):
    import math

    result = run_scenario(scenario_id, "fast")
    for panel in result.panels:
        for series in panel.series:
            assert series.y
            assert all(math.isfinite(value) for value in series.y)
