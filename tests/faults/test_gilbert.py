"""Tests for the Gilbert-Elliott channel parameterization."""

from __future__ import annotations

import pytest

from repro.faults import GilbertElliottParameters


class TestValidation:
    @pytest.mark.parametrize("field", ["loss_good", "loss_bad"])
    @pytest.mark.parametrize("value", [-0.1, 1.0001])
    def test_loss_probabilities_bounded(self, field, value):
        kwargs = dict(loss_good=0.0, loss_bad=0.2, good_to_bad=0.1, bad_to_good=1.0)
        kwargs[field] = value
        with pytest.raises(ValueError, match=field):
            GilbertElliottParameters(**kwargs)

    @pytest.mark.parametrize("field", ["good_to_bad", "bad_to_good"])
    def test_flip_rates_non_negative(self, field):
        kwargs = dict(loss_good=0.0, loss_bad=0.2, good_to_bad=0.1, bad_to_good=1.0)
        kwargs[field] = -0.5
        with pytest.raises(ValueError, match=field):
            GilbertElliottParameters(**kwargs)

    def test_boundary_values_accepted(self):
        params = GilbertElliottParameters(
            loss_good=0.0, loss_bad=1.0, good_to_bad=0.0, bad_to_good=0.0
        )
        assert params.loss_bad == 1.0


class TestStationary:
    def test_stationary_split(self):
        params = GilbertElliottParameters(
            loss_good=0.0, loss_bad=0.2, good_to_bad=1.0, bad_to_good=3.0
        )
        assert params.stationary_bad == pytest.approx(0.25)
        assert params.stationary_good == pytest.approx(0.75)

    def test_pinned_channel_is_all_good(self):
        params = GilbertElliottParameters(
            loss_good=0.05, loss_bad=0.9, good_to_bad=0.0, bad_to_good=0.0
        )
        assert params.stationary_bad == 0.0
        assert params.average_loss == pytest.approx(0.05)

    def test_average_loss_mixes_states(self):
        params = GilbertElliottParameters(
            loss_good=0.0, loss_bad=0.2, good_to_bad=1.0, bad_to_good=9.0
        )
        # 10% of the time in the bad state losing 20%.
        assert params.average_loss == pytest.approx(0.02)


class TestDegeneracy:
    def test_equal_losses_degenerate(self):
        params = GilbertElliottParameters(
            loss_good=0.02, loss_bad=0.02, good_to_bad=0.1, bad_to_good=1.0
        )
        assert params.is_degenerate

    def test_unequal_losses_not_degenerate(self):
        params = GilbertElliottParameters(
            loss_good=0.02, loss_bad=0.02 + 1e-12, good_to_bad=0.1, bad_to_good=1.0
        )
        assert not params.is_degenerate


class TestMatchedAverage:
    @pytest.mark.parametrize("burstiness", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_average_loss_held_fixed(self, burstiness):
        params = GilbertElliottParameters.matched_average(0.02, burstiness)
        assert params.average_loss == pytest.approx(0.02, rel=1e-12)

    def test_zero_burstiness_is_exactly_degenerate(self):
        params = GilbertElliottParameters.matched_average(0.02, 0.0)
        assert params.is_degenerate
        assert params.loss_good == 0.02
        assert params.loss_bad == 0.02

    def test_full_burstiness_concentrates_loss_in_bad_state(self):
        params = GilbertElliottParameters.matched_average(
            0.02, 1.0, stationary_bad=0.1, mean_bad_duration=1.0
        )
        assert params.loss_bad == pytest.approx(0.2)
        assert params.loss_good == pytest.approx(0.0, abs=1e-15)
        assert params.bad_to_good == pytest.approx(1.0)
        assert params.good_to_bad == pytest.approx(1.0 / 9.0)

    def test_bad_loss_capped_at_certain_loss(self):
        # average_loss / stationary_bad > 1: the bad state saturates and
        # the good state keeps the remainder.
        params = GilbertElliottParameters.matched_average(
            0.5, 1.0, stationary_bad=0.1
        )
        assert params.loss_bad == 1.0
        assert params.loss_good == pytest.approx((0.5 - 0.1) / 0.9)
        assert params.average_loss == pytest.approx(0.5)

    def test_mean_bad_duration_sets_burst_timescale(self):
        fast = GilbertElliottParameters.matched_average(0.02, 0.5, mean_bad_duration=1.0)
        slow = GilbertElliottParameters.matched_average(0.02, 0.5, mean_bad_duration=10.0)
        assert slow.bad_to_good == pytest.approx(fast.bad_to_good / 10.0)
        # The stationary split (and hence the loss split) is unchanged.
        assert slow.stationary_bad == pytest.approx(fast.stationary_bad)
        assert slow.loss_bad == fast.loss_bad

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(average_loss=-0.1, burstiness=0.5), "average_loss"),
            (dict(average_loss=1.1, burstiness=0.5), "average_loss"),
            (dict(average_loss=0.02, burstiness=-0.1), "burstiness"),
            (dict(average_loss=0.02, burstiness=1.5), "burstiness"),
            (dict(average_loss=0.02, burstiness=0.5, stationary_bad=0.0), "stationary_bad"),
            (dict(average_loss=0.02, burstiness=0.5, stationary_bad=1.0), "stationary_bad"),
            (dict(average_loss=0.02, burstiness=0.5, mean_bad_duration=0.0), "mean_bad_duration"),
        ],
    )
    def test_argument_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            GilbertElliottParameters.matched_average(**kwargs)


class TestReplace:
    def test_replace_returns_modified_copy(self):
        base = GilbertElliottParameters.matched_average(0.02, 0.5)
        bumped = base.replace(loss_bad=0.3)
        assert bumped.loss_bad == 0.3
        assert bumped.loss_good == base.loss_good
        assert base.loss_bad != 0.3
