"""Tests for deterministic fault schedules (flaps and crashes)."""

from __future__ import annotations

import pytest

from repro.faults import FaultSchedule, LinkFlap, NodeCrash


class TestLinkFlap:
    def test_windows_are_periodic(self):
        flap = LinkFlap(link=1, period=10.0, down_duration=2.0, offset=1.0)
        assert list(flap.windows(25.0)) == [(1.0, 3.0), (11.0, 13.0), (21.0, 23.0)]

    def test_windows_empty_before_offset(self):
        flap = LinkFlap(link=1, period=10.0, down_duration=2.0, offset=50.0)
        assert list(flap.windows(50.0)) == []

    def test_is_down_inside_and_outside_windows(self):
        flap = LinkFlap(link=1, period=10.0, down_duration=2.0, offset=1.0)
        assert not flap.is_down(0.5)  # before the first outage
        assert flap.is_down(1.0)  # outage start is inclusive
        assert flap.is_down(2.999)
        assert not flap.is_down(3.0)  # outage end is exclusive
        assert flap.is_down(11.5)  # second period

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(link=1, period=0.0, down_duration=1.0), "period"),
            (dict(link=1, period=-5.0, down_duration=1.0), "period"),
            (dict(link=1, period=10.0, down_duration=0.0), "down_duration"),
            (dict(link=1, period=10.0, down_duration=10.0), "down_duration"),
            (dict(link=1, period=10.0, down_duration=1.0, offset=-1.0), "offset"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LinkFlap(**kwargs)


class TestNodeCrash:
    def test_restart_at(self):
        crash = NodeCrash(node=2, at=100.0, restart_after=30.0)
        assert crash.restart_at == 130.0

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            (dict(node=1, at=-1.0, restart_after=10.0), "at"),
            (dict(node=1, at=float("nan"), restart_after=10.0), "at"),
            (dict(node=1, at=0.0, restart_after=0.0), "restart_after"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            NodeCrash(**kwargs)


class TestFaultSchedule:
    def test_empty_by_default(self):
        assert FaultSchedule().is_empty

    def test_sequences_coerced_to_tuples(self):
        schedule = FaultSchedule(
            flaps=[LinkFlap(link=1, period=10.0, down_duration=1.0)],
            crashes=[NodeCrash(node=1, at=5.0, restart_after=1.0)],
        )
        assert isinstance(schedule.flaps, tuple)
        assert isinstance(schedule.crashes, tuple)
        assert not schedule.is_empty

    def test_flaps_for_filters_by_link(self):
        one = LinkFlap(link=1, period=10.0, down_duration=1.0)
        two = LinkFlap(link=2, period=20.0, down_duration=2.0)
        schedule = FaultSchedule(flaps=(one, two, one))
        assert schedule.flaps_for(1) == (one, one)
        assert schedule.flaps_for(3) == ()

    def test_crashes_for_sorted_by_time(self):
        late = NodeCrash(node=1, at=200.0, restart_after=10.0)
        early = NodeCrash(node=1, at=50.0, restart_after=10.0)
        other = NodeCrash(node=2, at=1.0, restart_after=10.0)
        schedule = FaultSchedule(crashes=(late, other, early))
        assert schedule.crashes_for(1) == (early, late)
        assert schedule.crashes_for(2) == (other,)
