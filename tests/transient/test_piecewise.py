"""Tests for the piecewise-constant-generator driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocols import Protocol
from repro.faults.schedule import FaultSchedule, LinkFlap, NodeCrash
from repro.transient import (
    ChainTransientModel,
    GeneratorSegment,
    fault_segments,
    piecewise_transient,
)

FLAP = FaultSchedule(
    flaps=(LinkFlap(link=5, period=10_000.0, down_duration=40.0, offset=5.0),)
)
CRASH = FaultSchedule(crashes=(NodeCrash(node=5, at=5.0, restart_after=30.0),))


@pytest.fixture
def chain_model(multihop_params):
    return ChainTransientModel(Protocol.SS, multihop_params)


class TestFaultSegments:
    def test_empty_schedule_is_one_open_segment(self):
        [segment] = fault_segments(None, 100.0, lambda node: node)
        assert segment == GeneratorSegment(0.0, float("inf"), (), ())
        [segment] = fault_segments(FaultSchedule(), 100.0, lambda node: node)
        assert segment.down_links == ()

    def test_flap_window_splits_the_timeline(self):
        segments = fault_segments(FLAP, 100.0, lambda node: node)
        assert [s.start for s in segments] == [0.0, 5.0, 45.0]
        assert segments[0].down_links == ()
        assert segments[1].down_links == (5,)
        assert segments[2].down_links == ()
        assert segments[-1].end == float("inf")

    def test_crash_marks_link_down_and_node_crashed(self):
        segments = fault_segments(CRASH, 100.0, lambda node: node)
        assert [s.start for s in segments] == [0.0, 5.0, 35.0]
        assert segments[1].crashed_nodes == (5,)
        assert segments[1].down_links == (5,)
        assert segments[2].crashed_nodes == ()
        assert segments[2].down_links == ()

    def test_windows_past_horizon_are_dropped(self):
        schedule = FaultSchedule(
            flaps=(LinkFlap(link=1, period=50.0, down_duration=10.0, offset=5.0),)
        )
        segments = fault_segments(schedule, 60.0, lambda node: node)
        # Two windows start before t=60 ([5,15) and [55,65)); the
        # second one's up-edge lies past the horizon.
        assert [s.start for s in segments] == [0.0, 5.0, 15.0, 55.0]
        assert segments[-1].down_links == (1,)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            fault_segments(FLAP, -1.0, lambda node: node)


class TestPiecewiseTransient:
    def test_matches_plain_kernel_without_faults(self, chain_model):
        from repro.core.uniformization import uniformized_transient

        initial = chain_model.initial_vector("empty")
        times = (0.5, 2.0, 10.0)
        rows = piecewise_transient(chain_model, initial, times)
        plain = uniformized_transient(chain_model.nominal_chain(), initial, times)
        assert np.allclose(rows, plain.probabilities, atol=1e-12)

    def test_segment_boundaries_are_continuous(self, chain_model):
        # A flap changes the generator, not the state: sampling just
        # before and just after a boundary must agree to O(eps).
        initial = chain_model.initial_vector("stationary")
        eps = 1e-6
        for boundary in (5.0, 45.0):
            before, after = piecewise_transient(
                chain_model, initial, (boundary - eps, boundary + eps), FLAP
            )
            assert np.abs(after - before).max() < 1e-4

    def test_crash_instant_jumps_through_projection(self, chain_model, multihop_params):
        initial = chain_model.initial_vector("stationary")
        eps = 1e-9
        before, at = piecewise_transient(
            chain_model, initial, (5.0 - eps, 5.0), CRASH
        )
        index = chain_model.consistent_index
        # The sample exactly at the crash sees the projected state.
        assert before[index] > 0.5
        assert at[index] == pytest.approx(0.0, abs=1e-12)

    def test_consistency_zero_while_crashed(self, chain_model):
        initial = chain_model.initial_vector("stationary")
        rows = piecewise_transient(chain_model, initial, (10.0, 20.0, 34.0), CRASH)
        index = chain_model.consistent_index
        for row in rows:
            assert row[index] == pytest.approx(0.0, abs=1e-12)
            assert row.sum() == pytest.approx(1.0, abs=1e-9)

    def test_flap_curve_returns_to_stationary(self, chain_model):
        initial = chain_model.initial_vector("stationary")
        index = chain_model.consistent_index
        stationary = float(initial[index])
        [during, long_after] = piecewise_transient(
            chain_model, initial, (44.0, 400.0), FLAP
        )[:, index]
        assert during < 0.5 * stationary
        assert long_after == pytest.approx(stationary, abs=1e-6)

    def test_unsorted_times_rejected(self, chain_model):
        initial = chain_model.initial_vector("empty")
        with pytest.raises(ValueError):
            piecewise_transient(chain_model, initial, (2.0, 1.0))
        with pytest.raises(ValueError):
            piecewise_transient(chain_model, initial, (-1.0, 1.0))

    def test_empty_grid(self, chain_model):
        initial = chain_model.initial_vector("empty")
        rows = piecewise_transient(chain_model, initial, ())
        assert rows.shape == (0, len(chain_model.states()))
