"""Tests for the transient family adapters."""

from __future__ import annotations

import pytest

from repro.core.multihop.states import HopState
from repro.core.multihop.topology import Topology
from repro.core.protocols import Protocol
from repro.transient import (
    ChainTransientModel,
    SingleHopTransientModel,
    TreeTransientModel,
    transient_model,
)


class TestDispatch:
    def test_parameter_type_picks_family(self, params, multihop_params):
        assert isinstance(
            transient_model(Protocol.SS, params), SingleHopTransientModel
        )
        assert isinstance(
            transient_model(Protocol.SS, multihop_params), ChainTransientModel
        )
        topology = Topology.kary(2, 2)
        assert isinstance(
            transient_model(
                Protocol.SS, multihop_params.replace(hops=topology.num_edges), topology
            ),
            TreeTransientModel,
        )

    def test_tree_requires_multihop_parameters(self, params):
        with pytest.raises(TypeError):
            transient_model(Protocol.SS, params, Topology.kary(2, 2))


class TestInitialVectors:
    def test_empty_is_a_point_mass(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        vector = model.initial_vector("empty")
        assert vector.sum() == pytest.approx(1.0)
        assert vector[model.states().index(HopState(0, False))] == 1.0

    def test_stationary_matches_chain_solution(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        vector = model.initial_vector("stationary")
        stationary = model.nominal_chain().stationary_distribution()
        for state, value in zip(model.states(), vector):
            assert value == pytest.approx(stationary[state], abs=1e-12)

    def test_unknown_initial_rejected(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        with pytest.raises(ValueError):
            model.initial_vector("warm")


class TestDegradedChains:
    def test_state_space_is_preserved(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        degraded = model.degraded_chain((multihop_params.hops,))
        assert degraded.states == model.states()

    def test_degraded_single_hop_is_full_loss(self, params):
        model = SingleHopTransientModel(Protocol.SS, params)
        degraded = model.degraded_chain((1,))
        assert degraded.states == model.states()

    def test_unknown_link_rejected(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        with pytest.raises(ValueError):
            model.degraded_chain((multihop_params.hops + 1,))
        with pytest.raises(ValueError):
            model.degraded_chain(())

    def test_chains_are_cached(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        assert model.nominal_chain() is model.nominal_chain()
        assert model.degraded_chain((1,)) is model.degraded_chain((1,))


class TestCrashProjections:
    def test_last_node_projection_drops_deepest_state(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        projection = model.crash_projection(multihop_params.hops)
        states = model.states()
        n = multihop_params.hops
        target = states.index(HopState(n - 1, True))
        assert projection[states.index(HopState(n, False))] == target
        # States strictly below the crashed node are untouched.
        shallow = states.index(HopState(1, False))
        assert projection[shallow] == shallow

    def test_interior_chain_crash_rejected(self, multihop_params):
        model = ChainTransientModel(Protocol.SS, multihop_params)
        with pytest.raises(ValueError, match="last node"):
            model.crash_projection(1)

    def test_tree_crash_rejected(self, multihop_params):
        topology = Topology.kary(2, 2)
        model = TreeTransientModel(
            Protocol.SS, multihop_params.replace(hops=topology.num_edges), topology
        )
        with pytest.raises(ValueError, match="tree node crashes"):
            model.crash_projection(1)

    def test_single_hop_crash_maps_consistent_to_installed_only(self, params):
        from repro.core.singlehop.states import SingleHopState as S

        model = SingleHopTransientModel(Protocol.SS, params)
        projection = model.crash_projection(1)
        states = model.states()
        assert projection[states.index(S.CONSISTENT)] == states.index(S.S10_SLOW)


class TestTreeSurgery:
    def test_downed_child_cannot_join_consistent_set(self, multihop_params):
        topology = Topology.kary(2, 2)
        tree_params = multihop_params.replace(hops=topology.num_edges)
        model = TreeTransientModel(Protocol.SS, tree_params, topology)
        downed = 1
        degraded = model.degraded_chain((downed,))
        for (origin, destination), rate in degraded.rates.items():
            gained = set(destination.consistent) - set(origin.consistent)
            assert downed not in gained, (origin, destination, rate)

    def test_surgery_only_removes_rates(self, multihop_params):
        topology = Topology.kary(2, 2)
        tree_params = multihop_params.replace(hops=topology.num_edges)
        model = TreeTransientModel(Protocol.SS, tree_params, topology)
        nominal = model.nominal_chain()
        degraded = model.degraded_chain((1,))
        assert set(degraded.rates).issubset(set(nominal.rates))
        for key, rate in degraded.rates.items():
            assert rate == nominal.rates[key]
