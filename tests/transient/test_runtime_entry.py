"""Tests for the memo-cached transient runtime entry points."""

from __future__ import annotations

import pytest

from repro.core.protocols import Protocol
from repro.faults.schedule import FaultSchedule, NodeCrash
from repro.runtime import solve_transient_curve, solve_transient_point
from repro.transient import compute_transient_curve


class TestSolveTransientCurve:
    def test_matches_direct_computation(self, multihop_params):
        times = (0.5, 2.0, 10.0)
        task = (Protocol.SS, multihop_params, None, "empty", None, times)
        solved = solve_transient_curve(task)
        direct = compute_transient_curve(Protocol.SS, multihop_params, times)
        assert solved.consistency == direct.consistency

    def test_repeat_solve_is_memoized(self, multihop_params):
        task = (Protocol.SS_RT, multihop_params, None, "empty", None, (1.0, 4.0))
        assert solve_transient_curve(task) is solve_transient_curve(task)

    def test_fault_schedules_key_the_cache(self, multihop_params):
        crash = FaultSchedule(
            crashes=(NodeCrash(node=multihop_params.hops, at=1.0, restart_after=5.0),)
        )
        clean = solve_transient_curve(
            (Protocol.SS, multihop_params, None, "stationary", None, (2.0,))
        )
        faulted = solve_transient_curve(
            (Protocol.SS, multihop_params, None, "stationary", crash, (2.0,))
        )
        assert clean.consistency[0] > 0.5
        assert faulted.consistency[0] == pytest.approx(0.0, abs=1e-12)


class TestSolveTransientPoint:
    def test_single_time_only(self, multihop_params):
        with pytest.raises(ValueError):
            solve_transient_point(
                (Protocol.SS, multihop_params, None, "empty", None, (1.0, 2.0))
            )

    def test_agrees_with_curve(self, multihop_params):
        point = solve_transient_point(
            (Protocol.SS, multihop_params, None, "empty", None, (3.0,))
        )
        curve = solve_transient_curve(
            (Protocol.SS, multihop_params, None, "empty", None, (3.0,))
        )
        assert point == curve.consistency[0]
