"""Tests for transient curves and their SLO metrics."""

from __future__ import annotations

import math

import pytest

from repro.core.multihop.topology import Topology
from repro.core.protocols import Protocol
from repro.faults.schedule import FaultSchedule, LinkFlap
from repro.transient import (
    TransientCurve,
    compute_transient_curve,
    compute_transient_point,
    first_crossing,
    time_to_consistency,
    time_to_recover,
)


class TestFirstCrossing:
    def test_interpolates_between_grid_points(self):
        assert first_crossing((0.0, 10.0), (0.0, 1.0), 0.5) == pytest.approx(5.0)

    def test_exact_hit_on_grid_point(self):
        assert first_crossing((0.0, 2.0, 4.0), (0.0, 0.5, 1.0), 0.5) == 2.0

    def test_already_above_at_start(self):
        assert first_crossing((1.0, 2.0), (0.9, 0.95), 0.5) == 1.0

    def test_never_reached_is_inf(self):
        assert math.isinf(first_crossing((0.0, 1.0), (0.1, 0.2), 0.5))

    def test_after_skips_earlier_crossings(self):
        times = (0.0, 1.0, 2.0, 3.0, 4.0)
        values = (0.9, 0.9, 0.1, 0.1, 0.9)
        assert first_crossing(times, values, 0.5) == 0.0
        recovered = first_crossing(times, values, 0.5, after=2.0)
        assert 3.0 < recovered <= 4.0

    def test_flat_segment_crossing_snaps_to_right_edge(self):
        assert first_crossing((0.0, 1.0, 2.0), (0.5, 0.5, 0.5), 0.5) == 0.0


class TestCurveMetrics:
    def test_time_to_consistency_validates_target(self):
        curve = TransientCurve(Protocol.SS, (0.0, 1.0), (0.0, 0.9))
        with pytest.raises(ValueError):
            time_to_consistency(curve, target=1.5)

    def test_time_to_recover_is_absolute(self):
        curve = TransientCurve(
            Protocol.SS, (0.0, 10.0, 20.0, 30.0), (0.9, 0.1, 0.1, 0.9)
        )
        recovered = time_to_recover(curve, after=20.0, level=0.5)
        assert 20.0 < recovered <= 30.0
        with pytest.raises(ValueError):
            time_to_recover(curve, after=float("inf"), level=0.5)

    def test_curve_validates_grid(self):
        with pytest.raises(ValueError):
            TransientCurve(Protocol.SS, (0.0, 1.0), (0.5,))
        with pytest.raises(ValueError):
            TransientCurve(Protocol.SS, (1.0, 0.0), (0.5, 0.5))


class TestComputeTransientCurve:
    def test_cold_start_rises_from_zero(self, multihop_params):
        curve = compute_transient_curve(
            Protocol.SS, multihop_params, (0.0, 0.5, 2.0, 20.0)
        )
        assert curve.consistency[0] == pytest.approx(0.0)
        assert curve.consistency[1] < curve.consistency[2] < curve.consistency[3]

    def test_single_hop_family(self, params):
        curve = compute_transient_curve(Protocol.SS, params, (0.1, 1.0))
        assert 0.0 <= curve.consistency[0] <= curve.consistency[1] <= 1.0

    def test_tree_family_cold_start(self, multihop_params):
        topology = Topology.kary(2, 2)
        tree_params = multihop_params.replace(hops=topology.num_edges)
        curve = compute_transient_curve(
            Protocol.SS, tree_params, (0.5, 5.0), topology=topology
        )
        assert 0.0 < curve.consistency[1] <= 1.0

    def test_reliable_triggers_rebuild_faster_through_flap(self, multihop_params):
        # During an outage SS+RT behaves like SS (retransmissions die at
        # the cut too), but after the link returns the pending rebuild
        # completes faster.  Probe just after the up-edge.
        schedule = FaultSchedule(
            flaps=(
                LinkFlap(
                    link=multihop_params.hops,
                    period=10_000.0,
                    down_duration=40.0,
                    offset=5.0,
                ),
            )
        )
        probe = (52.0,)
        ss = compute_transient_curve(
            Protocol.SS, multihop_params, probe, initial="stationary",
            faults=schedule,
        )
        rt = compute_transient_curve(
            Protocol.SS_RT, multihop_params, probe, initial="stationary",
            faults=schedule,
        )
        assert rt.consistency[0] >= ss.consistency[0]

    def test_point_is_one_point_curve(self, multihop_params):
        point = compute_transient_point(Protocol.SS, multihop_params, 2.0)
        curve = compute_transient_curve(Protocol.SS, multihop_params, (2.0,))
        assert point == curve.consistency[0]
