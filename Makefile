# Developer entry points.  Everything assumes only numpy/scipy/pytest
# (plus pytest-benchmark for `bench`) are installed; PYTHONPATH=src is
# injected so no editable install is needed.

PYTHON ?= python
export PYTHONPATH := src

BENCH_STAMP := $(shell date -u +%Y%m%dT%H%M%SZ)
BENCH_JSON ?= BENCH_$(BENCH_STAMP).json

.PHONY: test chaos bench lint docs docs-check

test:
	$(PYTHON) -m pytest -x -q

# The fault-injection suite (SIGKILLed/hung/raising workers) -- excluded
# from `test` via the pyproject addopts marker filter; its own CI job
# runs this.  See docs/robustness.md.
chaos:
	$(PYTHON) -m pytest tests/runtime/test_chaos.py -m chaos -q

# Run the full benchmark suite and leave a timestamped JSON behind --
# the artifact the nightly CI job uploads to build the perf trajectory.
bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-json=$(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Generic hygiene (ruff) plus the repo-specific invariants (reprolint:
# layer DAG, determinism, canonical order, parity registration, worker
# safety -- see docs/linting.md).
lint:
	ruff check src tests benchmarks examples tools
	$(PYTHON) -m tools.reprolint

# Regenerate the committed, manifest/argparse-derived docs: the CLI
# reference and the layer-map block in docs/architecture.md.
docs:
	$(PYTHON) tools/generate_cli_docs.py
	$(PYTHON) tools/generate_layer_docs.py

# What the `docs` CI job runs: doctests on the public surface, no
# docs/cli.md or layer-map drift, no broken relative links in docs/
# or README.
docs-check:
	$(PYTHON) -m pytest --doctest-modules src/repro/api.py -q
	$(PYTHON) tools/generate_cli_docs.py --check
	$(PYTHON) tools/generate_layer_docs.py --check
	$(PYTHON) tools/check_links.py
